package sim

import (
	"math"
	"testing"

	"regmutex/internal/core"
	"regmutex/internal/isa"
	"regmutex/internal/occupancy"
)

// runScalar executes a one-warp kernel that computes dst = op(a, b[, c])
// per lane and stores lane results to global memory, returning lane 0's
// value. It exercises the full issue/scoreboard/execute path, not just
// the ALU switch.
func runScalar(t *testing.T, emit func(b *isa.Builder)) uint64 {
	t.Helper()
	b := isa.NewBuilder("scalar", 8, 2, 32)
	b.MovSpecial(0, isa.SpecTID)
	emit(b) // must leave the result in r7
	b.StGlobal(isa.R(0), 0, isa.R(7))
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = 1
	k.GlobalMemWords = 64

	cfg := occupancy.GTX480()
	cfg.NumSMs = 1
	pre, err := core.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(cfg, DefaultTiming(), pre, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	return d.Global[0]
}

func TestIntegerOpSemantics(t *testing.T) {
	cases := []struct {
		name string
		emit func(b *isa.Builder)
		want int64
	}{
		{"iadd", func(b *isa.Builder) { b.IAdd(7, isa.Imm(40), isa.Imm(2)) }, 42},
		{"isub", func(b *isa.Builder) { b.ISub(7, isa.Imm(40), isa.Imm(2)) }, 38},
		{"isub-negative", func(b *isa.Builder) { b.ISub(7, isa.Imm(2), isa.Imm(40)) }, -38},
		{"imul", func(b *isa.Builder) { b.IMul(7, isa.Imm(-6), isa.Imm(7)) }, -42},
		{"imad", func(b *isa.Builder) { b.IMad(7, isa.Imm(6), isa.Imm(7), isa.Imm(-2)) }, 40},
		{"imin", func(b *isa.Builder) { b.IMin(7, isa.Imm(-3), isa.Imm(5)) }, -3},
		{"imax", func(b *isa.Builder) { b.IMax(7, isa.Imm(-3), isa.Imm(5)) }, 5},
		{"iabs", func(b *isa.Builder) { b.IAbs(7, isa.Imm(-9)) }, 9},
		{"shl", func(b *isa.Builder) { b.Shl(7, isa.Imm(3), isa.Imm(4)) }, 48},
		{"shr-arithmetic", func(b *isa.Builder) { b.Shr(7, isa.Imm(-16), isa.Imm(2)) }, -4},
		{"and", func(b *isa.Builder) { b.And(7, isa.Imm(0b1100), isa.Imm(0b1010)) }, 0b1000},
		{"or", func(b *isa.Builder) { b.Or(7, isa.Imm(0b1100), isa.Imm(0b1010)) }, 0b1110},
		{"xor", func(b *isa.Builder) { b.Xor(7, isa.Imm(0b1100), isa.Imm(0b1010)) }, 0b0110},
		{"mov", func(b *isa.Builder) { b.Mov(7, isa.Imm(-1)) }, -1},
	}
	for _, c := range cases {
		if got := int64(runScalar(t, c.emit)); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestFloatOpSemantics(t *testing.T) {
	cases := []struct {
		name string
		emit func(b *isa.Builder)
		want float64
	}{
		{"fadd", func(b *isa.Builder) { b.FAdd(7, isa.FImm(1.5), isa.FImm(2.25)) }, 3.75},
		{"fsub", func(b *isa.Builder) { b.FSub(7, isa.FImm(1.5), isa.FImm(2.25)) }, -0.75},
		{"fmul", func(b *isa.Builder) { b.FMul(7, isa.FImm(1.5), isa.FImm(-2)) }, -3},
		{"ffma", func(b *isa.Builder) { b.FFma(7, isa.FImm(2), isa.FImm(3), isa.FImm(0.5)) }, 6.5},
		{"fmin", func(b *isa.Builder) { b.FMin(7, isa.FImm(-1), isa.FImm(1)) }, -1},
		{"fmax", func(b *isa.Builder) { b.FMax(7, isa.FImm(-1), isa.FImm(1)) }, 1},
		{"fabs", func(b *isa.Builder) { b.FAbs(7, isa.FImm(-2.5)) }, 2.5},
		{"i2f", func(b *isa.Builder) { b.I2F(7, isa.Imm(-7)) }, -7},
		{"fsqrt", func(b *isa.Builder) { b.FSqrt(7, isa.FImm(9)) }, 3},
		{"fsqrt-negative-abs", func(b *isa.Builder) { b.FSqrt(7, isa.FImm(-9)) }, 3},
		{"frcp", func(b *isa.Builder) { b.FRcp(7, isa.FImm(4)) }, 0.25},
		{"fsin", func(b *isa.Builder) { b.FSin(7, isa.FImm(0)) }, 0},
		{"fcos", func(b *isa.Builder) { b.FCos(7, isa.FImm(0)) }, 1},
		{"fexp", func(b *isa.Builder) { b.FExp(7, isa.FImm(0)) }, 1},
		{"flog", func(b *isa.Builder) { b.FLog(7, isa.FImm(math.E)) }, 1},
	}
	for _, c := range cases {
		got := isa.B2F(runScalar(t, c.emit))
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestF2ITruncates(t *testing.T) {
	if got := int64(runScalar(t, func(b *isa.Builder) { b.F2I(7, isa.FImm(3.9)) })); got != 3 {
		t.Errorf("f2i(3.9) = %d, want 3 (truncation)", got)
	}
	if got := int64(runScalar(t, func(b *isa.Builder) { b.F2I(7, isa.FImm(-3.9)) })); got != -3 {
		t.Errorf("f2i(-3.9) = %d, want -3", got)
	}
}

func TestFRcpZeroGuard(t *testing.T) {
	got := isa.B2F(runScalar(t, func(b *isa.Builder) { b.FRcp(7, isa.FImm(0)) }))
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("frcp(0) must not produce inf/NaN, got %v", got)
	}
}

func TestFExpClamps(t *testing.T) {
	got := isa.B2F(runScalar(t, func(b *isa.Builder) { b.FExp(7, isa.FImm(10000)) }))
	if math.IsInf(got, 0) {
		t.Error("fexp must clamp its argument to avoid inf")
	}
}

func TestSetpAllComparisons(t *testing.T) {
	cases := []struct {
		cmp   isa.CmpOp
		a, b  int64
		taken bool
	}{
		{isa.CmpEQ, 3, 3, true}, {isa.CmpEQ, 3, 4, false},
		{isa.CmpNE, 3, 4, true}, {isa.CmpNE, 3, 3, false},
		{isa.CmpLT, -1, 0, true}, {isa.CmpLT, 0, 0, false},
		{isa.CmpLE, 0, 0, true}, {isa.CmpLE, 1, 0, false},
		{isa.CmpGT, 1, 0, true}, {isa.CmpGT, 0, 0, false},
		{isa.CmpGE, 0, 0, true}, {isa.CmpGE, -1, 0, false},
	}
	for _, c := range cases {
		c := c
		got := int64(runScalar(t, func(b *isa.Builder) {
			b.Setp(0, c.cmp, isa.Imm(c.a), isa.Imm(c.b))
			b.Mov(7, isa.Imm(0))
			b.If(0)
			b.Mov(7, isa.Imm(1))
		}))
		want := int64(0)
		if c.taken {
			want = 1
		}
		if got != want {
			t.Errorf("setp.%v %d,%d -> %d, want %d", c.cmp, c.a, c.b, got, want)
		}
	}
}

func TestSetpFComparisons(t *testing.T) {
	got := int64(runScalar(t, func(b *isa.Builder) {
		b.SetpF(0, isa.CmpLT, isa.FImm(1.5), isa.FImm(2.5))
		b.Mov(7, isa.Imm(0))
		b.If(0)
		b.Mov(7, isa.Imm(1))
	}))
	if got != 1 {
		t.Errorf("setp.f.lt 1.5,2.5 -> %d, want 1", got)
	}
}

func TestSpecialRegisters(t *testing.T) {
	// tid differs per lane; check via a lane-indexed store.
	b := isa.NewBuilder("specials", 8, 1, 64)
	b.MovSpecial(0, isa.SpecTID)
	b.MovSpecial(1, isa.SpecNTID)
	b.MovSpecial(2, isa.SpecCTAID)
	b.MovSpecial(3, isa.SpecNCTAID)
	b.MovSpecial(4, isa.SpecLaneID)
	b.MovSpecial(5, isa.SpecWarpID)
	// value = tid + 1000*ntid + 100000*ctaid + laneid + 7*warpid
	b.IMad(6, isa.R(1), isa.Imm(1000), isa.R(0))
	b.IMad(6, isa.R(2), isa.Imm(100000), isa.R(6))
	b.IAdd(6, isa.R(6), isa.R(4))
	b.IMad(6, isa.R(5), isa.Imm(7), isa.R(6))
	b.Mov(7, isa.R(6))
	b.StGlobal(isa.R(0), 0, isa.R(7))
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = 2
	k.GlobalMemWords = 256

	cfg := occupancy.GTX480()
	cfg.NumSMs = 1
	pre, err := core.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(cfg, DefaultTiming(), pre, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	// Thread (cta=1, tid=40): lane 8, warp 1.
	tid, cta, lane, warp := 40, 1, 8, 1
	want := uint64(tid + 1000*64 + 100000*cta + lane + 7*warp)
	// Both CTAs write tid-indexed slots; CTA 1's thread 40 overwrote
	// CTA 0's only if addresses collide — they do (both store at tid).
	// The final value is whichever CTA stored last; to be deterministic,
	// check thread 40 of CTA 1 OR CTA 0 matches the formula.
	got := d.Global[40]
	want0 := uint64(tid + 1000*64 + 0 + lane + 7*warp)
	if got != want && got != want0 {
		t.Errorf("special-register mix = %d, want %d (cta1) or %d (cta0)", got, want, want0)
	}
}
