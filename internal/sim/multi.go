package sim

import (
	"fmt"

	"regmutex/internal/isa"
	"regmutex/internal/occupancy"
)

// NewMultiDevice builds a device that co-schedules CTAs of several
// *dissimilar* kernels on the same SMs (in the spirit of KernelMerge,
// which the paper cites as orthogonal work). Section IV states the
// RegMutex limitation this mode exists to demonstrate: "Co-scheduling
// dissimilar kernels on an SM is not supported by our technique and
// results in falling back to the default execution mode (zero-sized
// extended set)" — so the mode refuses kernels carrying an extended set
// and always uses static, exclusive allocation with direct resource
// accounting.
//
// Each kernel gets its own global memory (globals[i]; nil entries are
// allocated zero-filled).
func NewMultiDevice(cfg occupancy.Config, timing Timing, kernels []*isa.Kernel, globals [][]uint64) (*Device, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("sim: no kernels to co-schedule")
	}
	if globals == nil {
		globals = make([][]uint64, len(kernels))
	}
	if len(globals) != len(kernels) {
		return nil, fmt.Errorf("sim: %d kernels but %d memories", len(kernels), len(globals))
	}
	totalCTAs := 0
	for i, k := range kernels {
		if err := k.Validate(); err != nil {
			return nil, err
		}
		if k.HasExtendedSet() {
			return nil, fmt.Errorf("sim: kernel %s carries an extended set; co-scheduling dissimilar kernels requires the default execution mode (strip the RegMutex transform first)", k.Name)
		}
		if globals[i] == nil {
			words := k.GlobalMemWords
			if words <= 0 {
				words = 1 << 12
			}
			globals[i] = make([]uint64, words)
		}
		totalCTAs += k.GridCTAs
		// Every kernel must fit an empty SM on its own.
		if occupancy.Baseline(cfg, k).CTAsPerSM < 1 {
			return nil, fmt.Errorf("sim: kernel %s does not fit on %s", k.Name, cfg.Name)
		}
	}
	d := &Device{
		Config:    cfg,
		Timing:    timing,
		Kernel:    kernels[0],
		Policy:    NewStaticPolicy(cfg),
		Global:    globals[0],
		kernels:   kernels,
		globals:   globals,
		multiNext: make([]int, len(kernels)),
		totalCTAs: totalCTAs,
	}
	for i := 0; i < cfg.NumSMs; i++ {
		sm := newSM(d, i)
		sm.policy = nopState{}
		d.sms = append(d.sms, sm)
	}
	// Initial wave: round-robin over kernels and SMs.
	for progress := true; progress; {
		progress = false
		for _, sm := range d.sms {
			if d.multiBackfill(sm) {
				progress = true
			}
		}
	}
	return d, nil
}

// multi reports whether the device runs in co-scheduling mode.
func (d *Device) multi() bool { return d.kernels != nil }

// multiBackfill launches at most one pending CTA (rotating over kernels)
// onto sm; reports whether anything launched. The rotation pointer only
// advances past a kernel when it actually launches, so a kernel that was
// merely skipped (drained grid, no room) does not lose its turn and
// multiRR stays within [0, len(kernels)).
func (d *Device) multiBackfill(sm *SM) bool {
	for n := 0; n < len(d.kernels); n++ {
		ki := (d.multiRR + n) % len(d.kernels)
		k := d.kernels[ki]
		if d.multiNext[ki] >= k.GridCTAs {
			continue
		}
		if !sm.canHost(k) {
			continue
		}
		sm.launchCTAOf(k, ki, d.multiNext[ki])
		d.emit(Event{Cycle: d.now, SM: sm.id, Kind: "cta-launch", Data: d.multiNext[ki]})
		d.multiNext[ki]++
		d.multiRR = (ki + 1) % len(d.kernels)
		return true
	}
	return false
}

// canHost checks whether sm has room for one more CTA of k under static,
// exclusive allocation: warp slots, register rows, threads, shared
// memory, and the CTA cap — the multi-kernel generalisation of the
// occupancy calculator.
func (sm *SM) canHost(k *isa.Kernel) bool {
	cfg := sm.dev.Config
	if len(sm.ctas) >= cfg.MaxCTAsPerSM {
		return false
	}
	if sm.freeSlots() < k.WarpsPerCTA() {
		return false
	}
	threads, rows, shared := 0, 0, 0
	for _, c := range sm.ctas {
		threads += c.kern.ThreadsPerCTA
		rows += c.kern.WarpsPerCTA() * c.kern.AllocRegs()
		shared += c.kern.SharedMemWords
	}
	if threads+k.ThreadsPerCTA > cfg.MaxThreadsPerSM {
		return false
	}
	if rows+k.WarpsPerCTA()*k.AllocRegs() > cfg.WarpRegisters() {
		return false
	}
	if shared+k.SharedMemWords > cfg.SharedWordsPerSM {
		return false
	}
	return true
}
