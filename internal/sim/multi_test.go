package sim

import (
	"testing"

	"regmutex/internal/core"
	"regmutex/internal/isa"
	"regmutex/internal/occupancy"
	"regmutex/internal/workloads"
)

// twoKernels prepares a dissimilar pair for co-scheduling tests.
func twoKernels(t *testing.T) (ka, kb *isa.Kernel, ga, gb []uint64) {
	t.Helper()
	wa, err := workloads.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	wb, err := workloads.ByName("mriq")
	if err != nil {
		t.Fatal(err)
	}
	a := wa.Build(16)
	b := wb.Build(16)
	ga = wa.Input(a, 42)
	gb = wb.Input(b, 42)
	ka, err = core.Prepare(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err = core.Prepare(b)
	if err != nil {
		t.Fatal(err)
	}
	return ka, kb, ga, gb
}

func TestMultiDeviceRefusesExtendedSets(t *testing.T) {
	cfg := smallCfg()
	w, err := workloads.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	k := w.Build(16)
	res, err := core.Transform(k, core.Options{Config: occupancy.GTX480()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disabled() {
		t.Fatal("setup: bfs should transform")
	}
	if _, err := NewMultiDevice(cfg, DefaultTiming(), []*isa.Kernel{res.Kernel}, nil); err == nil {
		t.Error("co-scheduling must refuse kernels with an extended set (the section IV fallback)")
	}
}

func TestMultiDeviceFunctionalIsolation(t *testing.T) {
	cfg := smallCfg()
	ka, kb, ga, gb := twoKernels(t)

	// Reference: each kernel alone.
	refA, err := NewDevice(cfg, DefaultTiming(), ka, nil, append([]uint64(nil), ga...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refA.Run(); err != nil {
		t.Fatal(err)
	}
	refB, err := NewDevice(cfg, DefaultTiming(), kb, nil, append([]uint64(nil), gb...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refB.Run(); err != nil {
		t.Fatal(err)
	}

	// Co-scheduled: both kernels share the SMs but not their memories.
	d, err := NewMultiDevice(cfg, DefaultTiming(), []*isa.Kernel{ka, kb},
		[][]uint64{append([]uint64(nil), ga...), append([]uint64(nil), gb...)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.CTAs != ka.GridCTAs+kb.GridCTAs {
		t.Fatalf("CTAs = %d, want %d", st.CTAs, ka.GridCTAs+kb.GridCTAs)
	}
	for i, want := range refA.Global {
		if d.GlobalOf(0)[i] != want {
			t.Fatalf("kernel A memory diverges at %d under co-scheduling", i)
		}
	}
	for i, want := range refB.Global {
		if d.GlobalOf(1)[i] != want {
			t.Fatalf("kernel B memory diverges at %d under co-scheduling", i)
		}
	}
}

func TestMultiDeviceImprovesUtilisation(t *testing.T) {
	// bfs is register-limited (32 of 48 warps); mriq's CTAs can fill
	// the leftover slots, so co-scheduling should beat running the two
	// kernels back to back.
	cfg := smallCfg()
	ka, kb, ga, gb := twoKernels(t)

	seq := int64(0)
	for _, p := range []struct {
		k *isa.Kernel
		g []uint64
	}{{ka, ga}, {kb, gb}} {
		d, err := NewDevice(cfg, DefaultTiming(), p.k, nil, append([]uint64(nil), p.g...))
		if err != nil {
			t.Fatal(err)
		}
		st, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		seq += st.Cycles
	}

	d, err := NewMultiDevice(cfg, DefaultTiming(), []*isa.Kernel{ka, kb},
		[][]uint64{append([]uint64(nil), ga...), append([]uint64(nil), gb...)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles >= seq {
		t.Errorf("co-scheduling (%d cycles) did not beat sequential (%d)", st.Cycles, seq)
	}
	t.Logf("sequential %d vs co-scheduled %d cycles (%.1f%% better)",
		seq, st.Cycles, 100*(1-float64(st.Cycles)/float64(seq)))
}

func TestMultiDeviceResourceAccounting(t *testing.T) {
	// Never overcommit any SM resource, sampled during the run.
	cfg := smallCfg()
	ka, kb, ga, gb := twoKernels(t)
	d, err := NewMultiDevice(cfg, DefaultTiming(), []*isa.Kernel{ka, kb},
		[][]uint64{ga, gb})
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		for _, sm := range d.sms {
			threads, rows, shared := 0, 0, 0
			for _, c := range sm.ctas {
				threads += c.kern.ThreadsPerCTA
				rows += c.kern.WarpsPerCTA() * c.kern.AllocRegs()
				shared += c.kern.SharedMemWords
			}
			if threads > cfg.MaxThreadsPerSM || rows > cfg.WarpRegisters() ||
				shared > cfg.SharedWordsPerSM || len(sm.ctas) > cfg.MaxCTAsPerSM {
				t.Fatalf("SM%d overcommitted: threads=%d rows=%d shared=%d ctas=%d",
					sm.id, threads, rows, shared, len(sm.ctas))
			}
		}
	}
	check()
	d.SampleInterval = 64
	d.Sampler = func(Sample) { check() }
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiDeviceDegenerateInputs(t *testing.T) {
	cfg := smallCfg()
	if _, err := NewMultiDevice(cfg, DefaultTiming(), nil, nil); err == nil {
		t.Error("empty kernel list must fail")
	}
	ka, _, ga, _ := twoKernels(t)
	if _, err := NewMultiDevice(cfg, DefaultTiming(), []*isa.Kernel{ka}, [][]uint64{ga, ga}); err == nil {
		t.Error("mismatched memory count must fail")
	}
	// Single kernel through the multi path still works.
	d, err := NewMultiDevice(cfg, DefaultTiming(), []*isa.Kernel{ka}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
}

// A single kernel must behave identically through the single- and
// multi-kernel launch paths (the accounting generalisation is exact).
func TestMultiDeviceSingleKernelEquivalence(t *testing.T) {
	cfg := smallCfg()
	w, err := workloads.ByName("mriq")
	if err != nil {
		t.Fatal(err)
	}
	k := w.Build(16)
	g := w.Input(k, 42)
	pre, err := core.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}

	d1, err := NewDevice(cfg, DefaultTiming(), pre, nil, append([]uint64(nil), g...))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := d1.Run()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewMultiDevice(cfg, DefaultTiming(), []*isa.Kernel{pre}, [][]uint64{append([]uint64(nil), g...)})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Cycles != s2.Cycles || s1.Instructions != s2.Instructions {
		t.Errorf("paths diverge: single %d/%d vs multi %d/%d cycles/instrs",
			s1.Cycles, s1.Instructions, s2.Cycles, s2.Instructions)
	}
	for i := range d1.Global {
		if d1.Global[i] != d2.GlobalOf(0)[i] {
			t.Fatalf("memory diverges at %d", i)
		}
	}
}
