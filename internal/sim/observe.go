package sim

// This file is the simulator's instrumentation surface: per-cycle stall
// attribution and the Observer interface that carries it (plus coarse
// events and utilisation samples) out of the machine. internal/obs builds
// the user-facing layer — ring-buffered traces, Chrome trace-event export,
// metrics — on top of these hooks.
//
// Attribution model: every scheduler slot of every stepped cycle is
// charged to exactly one StallCause. When a slot issues, the cause is
// CauseIssued and the charge goes to the issuing warp. When it does not,
// the charge goes to the warp the scheduler most wanted to run (greedy
// pick first, then priority/oldest order) with the first reason that
// warp could not issue — a warp stalled on several hazards in one cycle
// is charged the highest-priority one only (scoreboard, then structural
// memory/SFU back-pressure, then the policy's acquire gate). Slots with
// no runnable candidate are classified CauseBarrier (every mapped warp
// is parked at a CTA barrier), CauseNoWarp (no live warp maps to the
// scheduler), or CauseEmpty (the SM has no resident warps at all).
//
// The accounting is conservative by construction and auditor-checked:
// summed over causes, each SM's StallBreakdown equals the current cycle
// times SchedulersPerSM at every point Run can observe it (cycles the
// event-driven fast-forward skips are charged in bulk to the causes the
// last stepped cycle recorded, which by definition cannot change during
// a skip).

// StallCause identifies what a scheduler slot spent a cycle on.
type StallCause int8

// The scheduler-slot attribution causes. Exactly one is charged per
// scheduler slot per cycle.
const (
	// CauseIssued: the slot issued an instruction.
	CauseIssued StallCause = iota
	// CauseScoreboard: the preferred warp waits on a pending register
	// or predicate writeback.
	CauseScoreboard
	// CauseMemory: structural pipeline back-pressure — the global-memory
	// queue is full or the cycle's SFU port is taken.
	CauseMemory
	// CauseAcquire: the policy gate refused issue (a failed SRP or
	// pair-mutex acquire, an OWF lock, an RFV allocation stall).
	CauseAcquire
	// CauseBarrier: every live warp mapped to the slot is parked at a
	// CTA barrier.
	CauseBarrier
	// CauseNoWarp: the SM is occupied but no live warp maps to this
	// scheduler slot.
	CauseNoWarp
	// CauseEmpty: the SM has no resident warps (drained, or the grid
	// never filled it).
	CauseEmpty

	// NumStallCauses sizes StallBreakdown.
	NumStallCauses = int(CauseEmpty) + 1
)

// causeInvalid marks "no cause recorded yet" inside the issue loop; it
// never escapes the simulator.
const causeInvalid StallCause = -1

var causeNames = [NumStallCauses]string{
	"issued", "scoreboard", "memory", "acquire-wait", "barrier", "no-warp", "empty",
}

// String returns the cause's stable wire name (used in traces, metrics,
// and the timeline legend).
func (c StallCause) String() string {
	if c < 0 || int(c) >= NumStallCauses {
		return "invalid"
	}
	return causeNames[c]
}

// StallCauses lists every cause in charge-priority order.
func StallCauses() []StallCause {
	out := make([]StallCause, NumStallCauses)
	for i := range out {
		out[i] = StallCause(i)
	}
	return out
}

// StallBreakdown is a per-cause count of scheduler-slot cycles, indexed
// by StallCause. Summed over causes it equals slots × cycles exactly —
// the conservation law internal/audit's StallChecker enforces.
type StallBreakdown [NumStallCauses]int64

// Total sums every cause (issued included).
func (b StallBreakdown) Total() int64 {
	var t int64
	for _, v := range b {
		t += v
	}
	return t
}

// Stalled sums every non-issued cause.
func (b StallBreakdown) Stalled() int64 { return b.Total() - b[CauseIssued] }

// add accumulates o into b.
func (b *StallBreakdown) add(o StallBreakdown) {
	for i, v := range o {
		b[i] += v
	}
}

// StallSlot is one scheduler slot's attribution for one cycle, delivered
// to Observer.OnStall (issued slots included, so observers can build
// complete issue/stall span timelines).
type StallSlot struct {
	Cycle     int64
	SM        int
	Scheduler int
	Cause     StallCause
	// Warp is the charged warp: the issuer for CauseIssued, the
	// scheduler's preferred blocked warp for hazard causes, a parked
	// warp for CauseBarrier, nil for CauseNoWarp/CauseEmpty.
	Warp *Warp
}

// Observer is the unified instrumentation interface. Implementations
// must treat the machine as read-only; the simulator guarantees that an
// attached observer never changes simulated timing or results.
//
// OnEvent receives coarse structural events (CTA launch/retire, SRP
// acquire attempts with outcomes, releases). OnCycleSample receives a
// utilisation snapshot every SampleInterval cycles. OnStall receives
// every scheduler slot's per-cycle attribution — the hot hook; it is
// only invoked while an observer is attached.
type Observer interface {
	OnEvent(ev Event)
	OnCycleSample(s Sample)
	OnStall(s StallSlot)
}

// ObserverFuncs adapts plain functions to Observer; nil fields are
// simply skipped.
type ObserverFuncs struct {
	Event  func(Event)
	Sample func(Sample)
	Stall  func(StallSlot)
}

// OnEvent implements Observer.
func (o ObserverFuncs) OnEvent(ev Event) {
	if o.Event != nil {
		o.Event(ev)
	}
}

// OnCycleSample implements Observer.
func (o ObserverFuncs) OnCycleSample(s Sample) {
	if o.Sample != nil {
		o.Sample(s)
	}
}

// OnStall implements Observer.
func (o ObserverFuncs) OnStall(s StallSlot) {
	if o.Stall != nil {
		o.Stall(s)
	}
}

// multiObserver fans callbacks out to several observers in order.
type multiObserver []Observer

func (m multiObserver) OnEvent(ev Event) {
	for _, o := range m {
		o.OnEvent(ev)
	}
}

func (m multiObserver) OnCycleSample(s Sample) {
	for _, o := range m {
		o.OnCycleSample(s)
	}
}

func (m multiObserver) OnStall(s StallSlot) {
	for _, o := range m {
		o.OnStall(s)
	}
}

// MultiObserver combines observers into one; nil entries are dropped.
func MultiObserver(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiObserver(live)
}

// observing reports whether any event consumer (new Observer or legacy
// Listener) is attached; policies consult it before building events on
// hot failure paths.
func (d *Device) observing() bool { return d.obs != nil || d.Listener != nil }

// Breakdown returns the device-wide stall attribution accumulated so
// far (per-SM breakdowns summed).
func (d *Device) Breakdown() StallBreakdown {
	var b StallBreakdown
	for _, sm := range d.sms {
		b.add(sm.stalls)
	}
	return b
}
