package sim

import (
	"fmt"

	"regmutex/internal/isa"
	"regmutex/internal/occupancy"
)

// OWFPolicy models the resource-sharing scheme of Jatala et al. [7] with
// its Owner Warp First scheduling optimisation, as characterised in the
// paper's sections II and IV-C: warps are paired; architected registers
// with index >= Threshold are shared within the pair; the first warp to
// touch a shared register acquires a hardware lock and keeps it until the
// warp finishes (one-time acquire, no in-kernel release); owner warps are
// scheduled first.
type OWFPolicy struct {
	cfg occupancy.Config
	// Threshold is the shared-register boundary. The harness uses the
	// same |Bs| the RegMutex heuristic picks, making the comparison
	// apples-to-apples on the register split.
	Threshold int
}

// NewOWFPolicy returns the OWF comparator with the given sharing
// threshold.
func NewOWFPolicy(cfg occupancy.Config, threshold int) *OWFPolicy {
	return &OWFPolicy{cfg: cfg, Threshold: threshold}
}

// Name implements Policy.
func (p *OWFPolicy) Name() string { return "owf" }

// sharingPays reports whether pairing is worth taking: because the lock
// is one-time-acquire with no in-kernel release, once every pair's lock
// is taken only one warp per pair can progress, so the scheme's compiler
// shares registers only when even that worst-case concurrency (half the
// paired warps) beats the baseline residency. For kernels whose register
// peak recurs every loop iteration — this entire workload set — it never
// does, and OWF degenerates to the baseline allocation plus owner-first
// scheduling, which is consistent with the ~2% average benefit the paper
// measures for it.
func (p *OWFPolicy) sharingPays(k *isa.Kernel) bool {
	regs := k.AllocRegs()
	t := p.Threshold
	if t <= 0 || t >= regs {
		return false
	}
	paired := occupancy.PairedPairs(p.cfg, k, t, regs-t)
	base := occupancy.Baseline(p.cfg, k)
	return paired.WarpsPerSM/2 > base.WarpsPerSM
}

// CTAsPerSM implements Policy: each pair owns 2·T + (R − T) registers
// when sharing pays; otherwise the baseline allocation is kept.
func (p *OWFPolicy) CTAsPerSM(k *isa.Kernel) int {
	if !p.sharingPays(k) {
		return occupancy.Baseline(p.cfg, k).CTAsPerSM
	}
	regs := k.AllocRegs()
	return occupancy.PairedPairs(p.cfg, k, p.Threshold, regs-p.Threshold).CTAsPerSM
}

// NewSMState implements Policy.
func (p *OWFPolicy) NewSMState(sm *SM) PolicyState {
	if !p.sharingPays(sm.dev.Kernel) {
		return nopState{}
	}
	return &owfState{
		threshold: p.Threshold,
		owner:     make([]int, p.cfg.MaxWarpsPerSM/2+1),
	}
}

type owfState struct {
	nopState
	threshold int
	owner     []int // per pair: owner Widx + 1, or 0 while unowned
	attempts  uint64
	successes uint64
}

func (s *owfState) TryIssue(w *Warp, in *isa.Instr, now int64) bool {
	if in.Op == isa.OpBarSync {
		// Deadlock avoidance: an owner arriving at a CTA barrier must
		// drop the pair lock, or its locked-out partner could never
		// reach the same barrier.
		pair := w.Widx / 2
		if s.owner[pair] == w.Widx+1 {
			s.owner[pair] = 0
		}
		return true
	}
	if in.Touches().AtOrAbove(s.threshold).Empty() {
		return true
	}
	pair := w.Widx / 2
	switch s.owner[pair] {
	case w.Widx + 1:
		return true // already the owner
	case 0:
		s.attempts++
		s.successes++
		s.owner[pair] = w.Widx + 1 // one-time acquire
		return true
	default:
		s.attempts++
		return false // partner owns the shared registers until it exits
	}
}

// OnWarpExit releases the pair's shared registers — the only release
// point in this scheme.
func (s *owfState) OnWarpExit(w *Warp) {
	pair := w.Widx / 2
	if s.owner[pair] == w.Widx+1 {
		s.owner[pair] = 0
	}
}

// Priority implements Owner Warp First: owners run before non-owners.
func (s *owfState) Priority(w *Warp) int {
	if s.owner[w.Widx/2] == w.Widx+1 {
		return -1
	}
	return 0
}

func (s *owfState) Counters() (uint64, uint64, uint64) {
	return s.attempts, s.successes, 0
}

// AuditCycle validates the pair-lock state: a taken lock must name one of
// the pair's two warp slots.
func (s *owfState) AuditCycle() error {
	for pair, o := range s.owner {
		if o != 0 && (o-1)/2 != pair {
			return fmt.Errorf("OWF pair %d owned by warp %d outside the pair", pair, o-1)
		}
	}
	return nil
}
