package sim

// This file is the parallel-across-SMs engine: a persistent pool of
// workers, each owning a contiguous shard of SMs, stepping them
// concurrently between the per-cycle barriers of Device.RunContext.
//
// The determinism contract (DESIGN.md §11): Stats, traces, and audit
// results are byte-identical at every worker count. It holds because
// nothing an SM does during a cycle is visible outside the SM until the
// barrier:
//
//   - global-memory stores are buffered per SM and committed at the
//     barrier in SM order (loads always read the cycle-start state);
//   - CTA retirement and grid backfill are deferred per SM and processed
//     at the barrier in SM order (Device.finishCycle);
//   - observer callbacks (events and per-slot stall attribution) are
//     buffered per SM and replayed at the barrier in SM order;
//   - everything else an SM touches while stepping — warps, scheduler
//     state, policy state, stat counters, event heaps — is SM-local.
//
// Workers communicate with the coordinator over channels, whose
// happens-before edges make the protocol race-detector-clean; the cycle
// barrier is the pair of channel rounds in runCycle.

// smPool is the persistent worker pool. It lives for one RunContext call
// (created when Par > 1, stopped on return).
type smPool struct {
	d      *Device
	shards [][]*SM
	work   []chan int64 // per-worker cycle release, carrying the cycle number
	done   chan int     // per-worker issue counts back to the coordinator
}

// newSMPool starts one goroutine per worker over contiguous SM shards
// (sized within ±1 SM of each other) and switches every SM's observer
// path to per-cycle buffering when an observer or legacy listener is
// attached.
func newSMPool(d *Device, workers int) *smPool {
	p := &smPool{d: d, done: make(chan int, workers)}
	n := len(d.sms)
	base, rem := n/workers, n%workers
	start := 0
	for i := 0; i < workers; i++ {
		size := base
		if i < rem {
			size++
		}
		shard := d.sms[start : start+size]
		start += size
		ch := make(chan int64, 1)
		p.shards = append(p.shards, shard)
		p.work = append(p.work, ch)
		go p.worker(shard, ch)
	}
	if d.observing() {
		for _, sm := range d.sms {
			sm.buffered = true
		}
	}
	return p
}

func (p *smPool) worker(shard []*SM, work <-chan int64) {
	for now := range work {
		issued := 0
		for _, sm := range shard {
			if sm.wakeAt <= now {
				issued += sm.step(now)
			}
		}
		p.done <- issued
	}
}

// runCycle steps every due SM concurrently and returns the total issue
// count once all workers reach the barrier. On return the coordinator
// owns the machine again (the channel rounds order all worker writes
// before it).
func (p *smPool) runCycle(now int64) int {
	for _, ch := range p.work {
		ch <- now
	}
	total := 0
	for range p.work {
		total += <-p.done
	}
	return total
}

// stop shuts the workers down and restores direct observer emission.
func (p *smPool) stop() {
	for _, ch := range p.work {
		close(ch)
	}
	for _, sm := range p.d.sms {
		sm.buffered = false
	}
}
