package sim

import (
	"runtime"
	"testing"

	"regmutex/internal/isa"
)

// TestParallelMultiKernelBackfillDeterminism is the -race gate on the
// epoch-barrier protocol: co-scheduled dissimilar kernels exercise every
// barrier-serialised global action at once (deferred CTA retirement,
// rotating grid backfill, buffered global stores into two disjoint
// memories), and the run must produce bit-identical Stats and final
// memory images at every worker count — including one clamped above the
// SM count. CI runs this package under the race detector, which checks
// the channel barrier provides the happens-before edges the per-SM
// buffers rely on.
func TestParallelMultiKernelBackfillDeterminism(t *testing.T) {
	cfg := smallCfg()
	cfg.NumSMs = 4

	runAt := func(par int) (Stats, [][]uint64) {
		ka, kb, ga, gb := twoKernels(t)
		d, err := NewMultiDevice(cfg, DefaultTiming(), []*isa.Kernel{ka, kb},
			[][]uint64{ga, gb})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		// Par is set post-construction on purpose: NewMultiDevice has no
		// options plumbing, and the exported field is the documented way
		// to opt an already-built device into the parallel engine.
		d.Par = par
		st, err := d.Run()
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return st, d.globals
	}

	baseStats, baseMem := runAt(1)
	for _, par := range []int{2, 4, 8} { // 8 > NumSMs exercises poolWidth clamping
		st, mem := runAt(par)
		if st != baseStats {
			t.Errorf("par=%d Stats diverge from serial:\n serial: %+v\n par=%d: %+v",
				par, baseStats, par, st)
		}
		for ki := range baseMem {
			if !equalMem(baseMem[ki], mem[ki]) {
				t.Errorf("par=%d kernel %d final memory diverges from serial", par, ki)
			}
		}
	}
}

func equalMem(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPoolWidth(t *testing.T) {
	cases := []struct{ par, sms, want int }{
		{1, 8, 1},
		{4, 8, 4},
		{16, 8, 8}, // clamped to SM count
		{8, 8, 8},
	}
	for _, c := range cases {
		if got := poolWidth(c.par, c.sms); got != c.want {
			t.Errorf("poolWidth(%d, %d) = %d, want %d", c.par, c.sms, got, c.want)
		}
	}
	// 0 is automatic: GOMAXPROCS, still clamped to the SM count.
	auto := runtime.GOMAXPROCS(0)
	if auto > 8 {
		auto = 8
	}
	if got := poolWidth(0, 8); got != auto {
		t.Errorf("poolWidth(0, 8) = %d, want %d (GOMAXPROCS clamped)", got, auto)
	}
}
