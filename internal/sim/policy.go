package sim

import (
	"regmutex/internal/isa"
	"regmutex/internal/occupancy"
)

// Policy decides how physical registers constrain residency and how the
// RegMutex/OWF/RFV mechanisms behave at issue time.
type Policy interface {
	Name() string
	// CTAsPerSM is the residency the policy allows for the kernel.
	CTAsPerSM(k *isa.Kernel) int
	// NewSMState creates the per-SM mutable state.
	NewSMState(sm *SM) PolicyState
}

// PolicyState is per-SM policy state consulted by the issue logic.
type PolicyState interface {
	// TryIssue gates instruction issue. Returning false stalls the warp
	// this cycle (it retries when scheduled again). Implementations
	// perform their side effects (acquire a section, take a lock,
	// allocate physical registers) when they return true.
	TryIssue(w *Warp, in *isa.Instr, now int64) bool
	// OnIssued runs after in has issued (frees dead registers etc.).
	OnIssued(w *Warp, in *isa.Instr, now int64)
	// OnCTALaunch / OnCTARetire / OnWarpExit track residency changes.
	OnCTALaunch(cta *CTAState)
	OnCTARetire(cta *CTAState)
	OnWarpExit(w *Warp)
	// Priority orders warps for scheduling: lower runs first; 0 is the
	// default.
	Priority(w *Warp) int
	// Counters reports (acquire attempts, acquire successes, releases).
	Counters() (attempts, successes, releases uint64)
}

// nopState provides default no-op implementations.
type nopState struct{}

func (nopState) TryIssue(*Warp, *isa.Instr, int64) bool { return true }
func (nopState) OnIssued(*Warp, *isa.Instr, int64)      {}
func (nopState) OnCTALaunch(*CTAState)                  {}
func (nopState) OnCTARetire(*CTAState)                  {}
func (nopState) OnWarpExit(*Warp)                       {}
func (nopState) Priority(*Warp) int                     { return 0 }
func (nopState) Counters() (uint64, uint64, uint64)     { return 0, 0, 0 }

// ---------------------------------------------------------------------
// Static baseline: registers are reserved exclusively for the warp's
// lifetime at the kernel's full (rounded) demand. ACQ/REL are no-ops if
// they appear.
// ---------------------------------------------------------------------

// StaticPolicy is the unmodified GPU allocation scheme.
type StaticPolicy struct {
	cfg occupancy.Config
}

// NewStaticPolicy returns the baseline policy for the machine.
func NewStaticPolicy(cfg occupancy.Config) *StaticPolicy { return &StaticPolicy{cfg: cfg} }

// Name implements Policy.
func (p *StaticPolicy) Name() string { return "static" }

// CTAsPerSM implements Policy.
func (p *StaticPolicy) CTAsPerSM(k *isa.Kernel) int {
	return occupancy.Baseline(p.cfg, k).CTAsPerSM
}

// NewSMState implements Policy.
func (p *StaticPolicy) NewSMState(*SM) PolicyState { return nopState{} }
