package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regmutex/internal/core"
	"regmutex/internal/isa"
	"regmutex/internal/occupancy"
)

// barKernel is a tiny barrier kernel used to exercise policy edge cases.
func barKernel(regs int) *isa.Kernel {
	b := isa.NewBuilder("barpol", regs, 1, 64)
	b.MovSpecial(0, isa.SpecTID)
	b.Mov(1, isa.Imm(0))
	b.Mov(2, isa.Imm(4))
	b.Label("top")
	b.IAdd(isa.Reg(regs-1), isa.R(0), isa.Imm(1)) // touch the top register
	b.IAdd(1, isa.R(1), isa.R(isa.Reg(regs-1)))
	b.StShared(isa.R(0), 0, isa.R(1))
	b.Bar()
	b.LdShared(3, isa.R(0), 0)
	b.IAdd(1, isa.R(1), isa.R(3))
	b.ISub(2, isa.R(2), isa.Imm(1))
	b.Setp(0, isa.CmpGT, isa.R(2), isa.Imm(0))
	b.BraIf(0, "top")
	b.StGlobal(isa.R(0), 128, isa.R(1))
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = 4
	k.SharedMemWords = 64
	k.GlobalMemWords = 256
	return k
}

func TestOWFBarrierRelease(t *testing.T) {
	// An owner must drop the pair lock at a barrier; otherwise this
	// kernel (both pair members need reg >= threshold every iteration,
	// with a barrier between) would deadlock.
	cfg := smallCfg()
	cfg.NumSMs = 1
	k := barKernel(16)
	pre, err := core.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	st := &owfState{threshold: 12, owner: make([]int, cfg.MaxWarpsPerSM/2+1)}
	_ = st
	d, err := NewDevice(cfg, DefaultTiming(), pre, NewOWFPolicy(cfg, 12), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatalf("OWF deadlocked on a barrier kernel: %v", err)
	}
}

func TestOWFStateMachine(t *testing.T) {
	s := &owfState{threshold: 10, owner: make([]int, 25)}
	touchHigh := isa.NewInstr(isa.OpMov)
	touchHigh.Dst = 12
	touchHigh.Srcs[0] = isa.Imm(1)
	touchLow := isa.NewInstr(isa.OpMov)
	touchLow.Dst = 2
	touchLow.Srcs[0] = isa.Imm(1)

	w0 := &Warp{Widx: 0}
	w1 := &Warp{Widx: 1} // same pair as w0
	w2 := &Warp{Widx: 2} // different pair

	if !s.TryIssue(w0, &touchLow, 0) {
		t.Fatal("low access must not block")
	}
	if !s.TryIssue(w0, &touchHigh, 0) {
		t.Fatal("first high access acquires the pair lock")
	}
	if s.TryIssue(w1, &touchHigh, 0) {
		t.Fatal("partner must block while the owner lives")
	}
	if !s.TryIssue(w1, &touchLow, 0) {
		t.Fatal("partner's low accesses must proceed")
	}
	if !s.TryIssue(w2, &touchHigh, 0) {
		t.Fatal("other pairs are independent")
	}
	if s.Priority(w0) >= s.Priority(w1) {
		t.Error("owner warp must have scheduling priority")
	}
	s.OnWarpExit(w0)
	if !s.TryIssue(w1, &touchHigh, 0) {
		t.Fatal("lock must free at owner exit")
	}
}

func TestPairedStateMachine(t *testing.T) {
	s := &pairedState{holder: make([]int, 25)}
	acq := isa.NewInstr(isa.OpAcq)
	rel := isa.NewInstr(isa.OpRel)
	w0, w1 := &Warp{Widx: 6}, &Warp{Widx: 7}

	if !s.TryIssue(w0, &acq, 0) {
		t.Fatal("free pair must grant")
	}
	if !s.TryIssue(w0, &acq, 0) {
		t.Fatal("redundant self-acquire is a no-op success")
	}
	if s.TryIssue(w1, &acq, 0) {
		t.Fatal("partner must wait")
	}
	if !s.TryIssue(w1, &rel, 0) {
		t.Fatal("redundant release never blocks")
	}
	if !s.TryIssue(w0, &rel, 0) {
		t.Fatal("release never blocks")
	}
	if !s.TryIssue(w1, &acq, 0) {
		t.Fatal("partner acquires after release")
	}
	a, ok, r := s.Counters()
	if a != 4 || ok != 3 || r != 1 {
		t.Errorf("counters = %d/%d/%d", a, ok, r)
	}
}

func TestBlockingAcquireFIFO(t *testing.T) {
	// The blocking variant hands sections to the longest waiter.
	s := &regmutexState{srp: core.NewSRP(8, 1), blocking: true}
	acq := isa.NewInstr(isa.OpAcq)
	rel := isa.NewInstr(isa.OpRel)
	w0, w1, w2 := &Warp{Widx: 0}, &Warp{Widx: 1}, &Warp{Widx: 2}

	if !s.TryIssue(w0, &acq, 0) {
		t.Fatal("first acquire")
	}
	if s.TryIssue(w1, &acq, 0) || s.TryIssue(w2, &acq, 0) {
		t.Fatal("one section: others must wait")
	}
	s.TryIssue(w0, &rel, 0)
	// w2 retries first but w1 queued earlier; FIFO says w1 wins.
	if s.TryIssue(w2, &acq, 0) {
		t.Fatal("w2 must not jump the queue")
	}
	if !s.TryIssue(w1, &acq, 0) {
		t.Fatal("w1 is the head of the queue")
	}
	s.TryIssue(w1, &rel, 0)
	if !s.TryIssue(w2, &acq, 0) {
		t.Fatal("w2's turn after w1")
	}
}

func TestRFVAllocationLifecycle(t *testing.T) {
	cfg := smallCfg()
	k := memPeakKernel("rfvlife", 24, 256, 2, 3)
	pre, err := core.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(cfg, DefaultTiming(), pre, NewRFVPolicy(cfg), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Renaming must have freed registers: total frees > 0 and every
	// warp's rows returned (free pool back to capacity).
	if st.Releases == 0 {
		t.Error("RFV never freed a register")
	}
	for _, sm := range d.sms {
		rs, ok := sm.policy.(*rfvState)
		if !ok {
			t.Fatal("unexpected policy state type")
		}
		if rs.freeRows != cfg.WarpRegisters() {
			t.Errorf("SM%d leaked rows: %d free of %d", sm.id, rs.freeRows, cfg.WarpRegisters())
		}
	}
}

func TestLooseRoundRobinDeterminism(t *testing.T) {
	cfg := smallCfg()
	k := memPeakKernel("rr", 24, 256, 3, 4)
	pre, err := core.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	timing := DefaultTiming()
	timing.LooseRoundRobin = true
	var prev int64 = -1
	for i := 0; i < 2; i++ {
		d, err := NewDevice(cfg, timing, pre, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && st.Cycles != prev {
			t.Errorf("round-robin runs not deterministic: %d vs %d", st.Cycles, prev)
		}
		prev = st.Cycles
	}
}

// Property: the RegMutex transform is semantics-preserving — on random
// peak-shaped kernels, static and RegMutex runs produce identical global
// memory.
func TestTransformEquivalenceProperty(t *testing.T) {
	cfg := smallCfg()
	cfg.NumSMs = 1
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		regs := 21 + rng.Intn(10)  // 21..30
		iters := 2 + rng.Intn(4)   // 2..5
		peakAt := 12 + rng.Intn(6) // first peak register
		width := regs - peakAt     // peak width
		threads := 32 * (1 + rng.Intn(4))

		b := isa.NewBuilder("prop", regs, 1, threads)
		b.MovSpecial(0, isa.SpecTID)
		b.MovSpecial(1, isa.SpecCTAID)
		b.IMad(2, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.And(2, isa.R(2), isa.Imm(1023))
		b.Mov(3, isa.Imm(0))
		b.Mov(4, isa.Imm(int64(iters)))
		for r := 5; r < peakAt; r++ {
			b.IAdd(isa.Reg(r), isa.R(0), isa.Imm(int64(r)))
		}
		b.Label("top")
		b.LdGlobal(5, isa.R(2), 0)
		for i := 0; i < width; i++ {
			b.IAdd(isa.Reg(peakAt+i), isa.R(5), isa.Imm(int64(i*3+1)))
		}
		for i := 0; i < width; i++ {
			b.IAdd(3, isa.R(3), isa.R(isa.Reg(peakAt+i)))
		}
		b.IAdd(2, isa.R(2), isa.Imm(int64(threads)))
		b.And(2, isa.R(2), isa.Imm(1023))
		b.ISub(4, isa.R(4), isa.Imm(1))
		b.Setp(0, isa.CmpGT, isa.R(4), isa.Imm(0))
		b.BraIf(0, "top")
		for r := 5; r < peakAt; r++ {
			b.IAdd(3, isa.R(3), isa.R(isa.Reg(r)))
		}
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), 2048, isa.R(3))
		b.Exit()
		k, err := b.Kernel()
		if err != nil {
			return false
		}
		k.GridCTAs = 1 + rng.Intn(3)
		k.GlobalMemWords = 2048 + 1024

		input := make([]uint64, k.GlobalMemWords)
		for i := range input {
			input[i] = uint64(rng.Intn(4096))
		}

		pre, err := core.Prepare(k)
		if err != nil {
			return false
		}
		d1, err := NewDevice(cfg, DefaultTiming(), pre, nil, append([]uint64(nil), input...))
		if err != nil {
			return false
		}
		if _, err := d1.Run(); err != nil {
			return false
		}

		bs := peakAt // force a split right at the peak boundary
		res, err := core.Transform(k, core.Options{Config: cfg, ForceEs: k.AllocRegs() - bs})
		if err != nil {
			// Some random shapes are legitimately infeasible; that is
			// not an equivalence failure.
			return true
		}
		d2, err := NewDevice(cfg, DefaultTiming(), res.Kernel, NewRegMutexPolicy(cfg), append([]uint64(nil), input...))
		if err != nil {
			return false
		}
		if _, err := d2.Run(); err != nil {
			return false
		}
		for i := range d1.Global {
			if d1.Global[i] != d2.Global[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestDeviceOOBAccounting(t *testing.T) {
	b := isa.NewBuilder("oob", 4, 1, 32)
	b.Mov(0, isa.Imm(1<<40)) // way out of bounds
	b.LdGlobal(1, isa.R(0), 0)
	b.StGlobal(isa.R(0), 7, isa.R(1))
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = 1
	k.GlobalMemWords = 64
	pre, err := core.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := occupancy.GTX480()
	cfg.NumSMs = 1
	d, err := NewDevice(cfg, DefaultTiming(), pre, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.OOBAccesses == 0 {
		t.Error("out-of-bounds accesses were not counted")
	}
}

func TestDeviceEvents(t *testing.T) {
	cfg := smallCfg()
	cfg.NumSMs = 1
	k := memPeakKernel("events", 24, 256, 2, 2)
	res, err := core.Transform(k, core.Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(cfg, DefaultTiming(), res.Kernel, NewRegMutexPolicy(cfg), nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	d.Listener = func(ev Event) { counts[ev.Kind]++ }
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if counts["cta-retire"] != k.GridCTAs {
		t.Errorf("cta-retire events = %d, want %d", counts["cta-retire"], k.GridCTAs)
	}
	if counts["acquire"] == 0 || counts["release"] == 0 {
		t.Errorf("missing acquire/release events: %v", counts)
	}
	if counts["acquire"] != counts["release"] {
		t.Errorf("acquires (%d) != releases (%d)", counts["acquire"], counts["release"])
	}
}
