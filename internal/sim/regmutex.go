package sim

import (
	"fmt"

	"regmutex/internal/core"
	"regmutex/internal/isa"
	"regmutex/internal/occupancy"
)

// RegMutexPolicy implements the paper's mechanism: the base set is
// statically allocated (residency computed with |Bs|), and extended sets
// are time-shared out of the Shared Register Pool via the warp-status /
// SRP bitmasks and lookup table of section III-B1.
type RegMutexPolicy struct {
	cfg occupancy.Config

	// Blocking switches failed acquires from the paper's retry-at-issue
	// scheme to a FIFO hand-off: releases reserve the freed section for
	// the longest-waiting warp (ablation: BenchmarkAblationRetry).
	Blocking bool
}

// NewRegMutexPolicy returns the RegMutex policy; the kernel must have been
// transformed by core.Transform (or carry BaseSet == AllocRegs for the
// disabled case, which then behaves exactly like the baseline).
func NewRegMutexPolicy(cfg occupancy.Config) *RegMutexPolicy {
	return &RegMutexPolicy{cfg: cfg}
}

// Name implements Policy.
func (p *RegMutexPolicy) Name() string { return "regmutex" }

// CTAsPerSM implements Policy: residency is computed charging only |Bs|
// per thread.
func (p *RegMutexPolicy) CTAsPerSM(k *isa.Kernel) int {
	if !k.HasExtendedSet() {
		return occupancy.Baseline(p.cfg, k).CTAsPerSM
	}
	return occupancy.WithBaseSet(p.cfg, k, k.BaseSet).CTAsPerSM
}

// NewSMState implements Policy.
func (p *RegMutexPolicy) NewSMState(sm *SM) PolicyState {
	k := sm.dev.Kernel
	if !k.HasExtendedSet() {
		return nopState{}
	}
	warps := p.CTAsPerSM(k) * k.WarpsPerCTA()
	sections, _ := occupancy.SRPSections(p.cfg, warps, k.BaseSet, k.ExtSet)
	return &regmutexState{
		sm:       sm,
		srp:      core.NewSRP(p.cfg.MaxWarpsPerSM, sections),
		blocking: p.Blocking,
	}
}

type regmutexState struct {
	nopState
	sm  *SM
	srp *core.SRP

	blocking bool
	waitQ    []int // Widx FIFO for the blocking hand-off variant
}

func (s *regmutexState) TryIssue(w *Warp, in *isa.Instr, now int64) bool {
	switch in.Op {
	case isa.OpAcq:
		if s.blocking && len(s.waitQ) > 0 && s.waitQ[0] != w.Widx {
			// Someone older is queued for the next free section.
			s.enqueue(w.Widx)
			s.srp.AcquireAttempts++
			s.emitFail(now, w.Widx)
			return false
		}
		ok := s.srp.Acquire(w.Widx)
		if ok {
			s.dequeue(w.Widx)
			s.emit(Event{Cycle: now, Kind: "acquire", Warp: w.Widx, Data: s.srp.Section(w.Widx)})
		} else {
			if s.blocking {
				s.enqueue(w.Widx)
			}
			s.emitFail(now, w.Widx)
		}
		return ok
	case isa.OpRel:
		if s.srp.Holding(w.Widx) {
			s.emit(Event{Cycle: now, Kind: "release", Warp: w.Widx, Data: s.srp.Section(w.Widx)})
		}
		s.srp.Release(w.Widx)
		return true
	default:
		return true
	}
}

// emit forwards an event to the device listener (absent in unit tests).
// It goes through the SM so the parallel engine can buffer it for
// in-order replay at the cycle barrier.
func (s *regmutexState) emit(ev Event) {
	if s.sm != nil {
		ev.SM = s.sm.id
		s.sm.emitEvent(ev)
	}
}

// emitFail reports a failed acquire attempt. It fires every retry cycle,
// so the Event is only built while something is observing.
func (s *regmutexState) emitFail(now int64, widx int) {
	if s.sm != nil && s.sm.dev.observing() {
		s.emit(Event{Cycle: now, Kind: "acquire-fail", Warp: widx, Data: -1})
	}
}

func (s *regmutexState) enqueue(widx int) {
	for _, x := range s.waitQ {
		if x == widx {
			return
		}
	}
	s.waitQ = append(s.waitQ, widx)
}

func (s *regmutexState) dequeue(widx int) {
	for i, x := range s.waitQ {
		if x == widx {
			s.waitQ = append(s.waitQ[:i], s.waitQ[i+1:]...)
			return
		}
	}
}

func (s *regmutexState) OnWarpExit(w *Warp) {
	// The compiler guarantees a REL before every exit; release
	// defensively so a straggler cannot leak a section.
	s.srp.Release(w.Widx)
	s.dequeue(w.Widx)
}

func (s *regmutexState) Counters() (uint64, uint64, uint64) {
	return s.srp.AcquireAttempts, s.srp.AcquireSuccesses, s.srp.Releases
}

// HeldSections reports currently-acquired SRP sections (for sampling).
func (s *regmutexState) HeldSections() int { return s.srp.InUse() }

// SRPSectionCount reports the SM's usable SRP section total (for wedge
// diagnostics).
func (s *regmutexState) SRPSectionCount() int { return s.srp.Sections() }

// SRP exposes the raw allocator state. FAULT INJECTION AND AUDIT ONLY:
// internal/faults corrupts it to prove the auditor notices.
func (s *regmutexState) SRP() *core.SRP { return s.srp }

// AuditCycle validates the SRP conservation law (free + held == total,
// every busy section owned by exactly one warp) each audit epoch.
func (s *regmutexState) AuditCycle() error { return s.srp.CheckConservation() }

// AuditEnd additionally requires zero leaked sections once the kernel has
// retired every CTA.
func (s *regmutexState) AuditEnd() error {
	if err := s.srp.CheckConservation(); err != nil {
		return err
	}
	if n := s.srp.InUse(); n > 0 {
		return fmt.Errorf("%d of %d SRP sections leaked at kernel end", n, s.srp.Sections())
	}
	return nil
}

// ---------------------------------------------------------------------
// Paired-warps specialisation (section III-C): SRP sections are privatised
// to pairs of warps; each pair statically owns 2·|Bs| + |Es| registers and
// a 1-bit mutex decides which of the two currently holds Es.
// ---------------------------------------------------------------------

// PairedPolicy is the paired-warps specialisation of RegMutex.
type PairedPolicy struct {
	cfg occupancy.Config
}

// NewPairedPolicy returns the paired-warps policy; the kernel must be
// RegMutex-transformed.
func NewPairedPolicy(cfg occupancy.Config) *PairedPolicy { return &PairedPolicy{cfg: cfg} }

// Name implements Policy.
func (p *PairedPolicy) Name() string { return "paired" }

// CTAsPerSM implements Policy.
func (p *PairedPolicy) CTAsPerSM(k *isa.Kernel) int {
	if !k.HasExtendedSet() {
		return occupancy.Baseline(p.cfg, k).CTAsPerSM
	}
	return occupancy.PairedPairs(p.cfg, k, k.BaseSet, k.ExtSet).CTAsPerSM
}

// NewSMState implements Policy.
func (p *PairedPolicy) NewSMState(sm *SM) PolicyState {
	k := sm.dev.Kernel
	if !k.HasExtendedSet() {
		return nopState{}
	}
	return &pairedState{holder: make([]int, p.cfg.MaxWarpsPerSM/2+1)}
}

type pairedState struct {
	nopState
	holder    []int // per pair: holding Widx + 1, or 0 for free
	attempts  uint64
	successes uint64
	releases  uint64
}

func (s *pairedState) TryIssue(w *Warp, in *isa.Instr, now int64) bool {
	pair := w.Widx / 2
	switch in.Op {
	case isa.OpAcq:
		s.attempts++
		switch s.holder[pair] {
		case 0:
			s.holder[pair] = w.Widx + 1
			s.successes++
			return true
		case w.Widx + 1:
			s.successes++ // redundant acquire: no-op
			return true
		default:
			return false // the pair partner holds Es
		}
	case isa.OpRel:
		if s.holder[pair] == w.Widx+1 {
			s.holder[pair] = 0
			s.releases++
		}
		return true
	default:
		return true
	}
}

func (s *pairedState) OnWarpExit(w *Warp) {
	pair := w.Widx / 2
	if s.holder[pair] == w.Widx+1 {
		s.holder[pair] = 0
		s.releases++
	}
}

func (s *pairedState) Counters() (uint64, uint64, uint64) {
	return s.attempts, s.successes, s.releases
}

// AuditCycle validates the pair-mutex state: a held bit must name one of
// the pair's two warps.
func (s *pairedState) AuditCycle() error {
	for pair, h := range s.holder {
		if h != 0 && (h-1)/2 != pair {
			return fmt.Errorf("pair %d mutex held by warp %d outside the pair", pair, h-1)
		}
	}
	return nil
}
