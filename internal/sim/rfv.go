package sim

import (
	"fmt"
	"sort"

	"regmutex/internal/cfg"
	"regmutex/internal/isa"
	"regmutex/internal/liveness"
	"regmutex/internal/occupancy"
)

// RFVPolicy models Register File Virtualization (Jeon et al. [3]): a
// per-warp renaming table maps architected registers to physical rows on
// demand. A row is allocated at a register's first write and freed at its
// (compiler-annotated) last use, so registers stop constraining residency;
// when the physical file is exhausted, the writing warp stalls until rows
// free up.
//
// Deadlock avoidance (our addition, standing in for the paper's throttling
// machinery): the CTA containing the oldest incomplete warp on the SM is
// "privileged" — rows are reserved so its warps' allocations always
// succeed, guaranteeing forward progress one CTA at a time in the worst
// case (CTA granularity, not warp granularity, because barriers couple a
// CTA's warps).
type RFVPolicy struct {
	cfg occupancy.Config
}

// NewRFVPolicy returns the RFV comparator.
func NewRFVPolicy(cfg occupancy.Config) *RFVPolicy { return &RFVPolicy{cfg: cfg} }

// Name implements Policy.
func (p *RFVPolicy) Name() string { return "rfv" }

// CTAsPerSM implements Policy: residency is bounded by the *average*
// dynamic register demand instead of the static maximum — renaming frees
// dead registers, so the file only has to cover what is simultaneously
// live on average (plus slack for the peaks); launching far beyond that
// would just convert every write into an allocation stall.
func (p *RFVPolicy) CTAsPerSM(k *isa.Kernel) int {
	free := occupancy.Unconstrained(p.cfg, k).CTAsPerSM
	base := occupancy.Baseline(p.cfg, k).CTAsPerSM
	demand := p.avgLiveDemand(k)
	// Nearest rounding: renaming absorbs brief over-subscription, so a
	// CTA that fits "most of the time" is worth launching.
	byRows := (2*p.cfg.WarpRegisters() + k.WarpsPerCTA()*demand) / (2 * k.WarpsPerCTA() * demand)
	ctas := byRows
	if ctas > free {
		ctas = free
	}
	if ctas < base {
		ctas = base
	}
	return ctas
}

// avgLiveDemand estimates the per-thread register rows a warp occupies on
// average under renaming. Hot-loop instructions dominate dynamic
// behaviour, so the estimate uses an upper quartile of the static live
// counts plus burst slack rather than the plain mean (which the ramp-up
// and ramp-down code would bias low).
func (p *RFVPolicy) avgLiveDemand(k *isa.Kernel) int {
	g, err := cfg.Build(k)
	if err != nil {
		return k.AllocRegs()
	}
	inf := liveness.Analyze(k, g)
	counts := make([]int, len(k.Instrs))
	for i := range k.Instrs {
		counts[i] = inf.CountAt(i)
	}
	sort.Ints(counts)
	d := counts[len(counts)*3/4] + 2 // upper quartile + burst slack
	if d < 4 {
		d = 4
	}
	if d > k.AllocRegs() {
		d = k.AllocRegs()
	}
	return d
}

// NewSMState implements Policy.
func (p *RFVPolicy) NewSMState(sm *SM) PolicyState {
	return &rfvState{
		sm:        sm,
		freeRows:  p.cfg.WarpRegisters(),
		totalRows: p.cfg.WarpRegisters(),
		backed:    make(map[*Warp]isa.RegSet),
	}
}

type rfvState struct {
	nopState
	sm        *SM
	freeRows  int
	totalRows int
	backed    map[*Warp]isa.RegSet

	allocStalls uint64
	allocs      uint64
	frees       uint64
}

// AuditCycle validates the renaming row conservation law: free rows plus
// rows backing architected registers must equal the physical file, and
// the free count can never go negative.
func (s *rfvState) AuditCycle() error {
	used := 0
	for _, rs := range s.backed {
		used += rs.Count()
	}
	if s.freeRows < 0 {
		return fmt.Errorf("RFV free row count %d is negative", s.freeRows)
	}
	if s.freeRows+used != s.totalRows {
		return fmt.Errorf("RFV row accounting broken: %d free + %d backed != %d total",
			s.freeRows, used, s.totalRows)
	}
	return nil
}

// AuditEnd additionally requires every row returned once all warps exit.
func (s *rfvState) AuditEnd() error {
	if err := s.AuditCycle(); err != nil {
		return err
	}
	if len(s.backed) > 0 {
		return fmt.Errorf("RFV leaked backing rows for %d warps at kernel end", len(s.backed))
	}
	return nil
}

// CorruptFreeRows shifts the free-row count without touching any backing
// state. FAULT INJECTION ONLY (internal/faults): it models a soft error in
// the register availability vector, which AuditCycle must catch as broken
// row accounting.
func (s *rfvState) CorruptFreeRows(delta int) { s.freeRows += delta }

// privileged returns the CTA containing the oldest incomplete warp.
func (s *rfvState) privileged() *CTAState {
	var oldest *Warp
	for _, w := range s.sm.warps {
		if w.Finished() {
			continue
		}
		if oldest == nil || w.Seq < oldest.Seq {
			oldest = w
		}
	}
	if oldest == nil {
		return nil
	}
	return oldest.CTA
}

// reserveFor returns the rows held back for the privileged CTA.
func (s *rfvState) reserveFor(priv *CTAState) int {
	if priv == nil {
		return 0
	}
	alloc := s.sm.dev.Kernel.AllocRegs()
	need := 0
	for _, w := range priv.warps {
		if w.Finished() {
			continue
		}
		if n := alloc - s.backed[w].Count(); n > 0 {
			need += n
		}
	}
	return need
}

func (s *rfvState) TryIssue(w *Warp, in *isa.Instr, now int64) bool {
	// Rows are needed for unbacked registers the instruction touches.
	// Reads of never-written registers also get a row (they hold
	// whatever garbage the row contains, as on real hardware).
	need := in.Touches().Diff(s.backed[w]).Count()
	if need == 0 {
		return true
	}
	avail := s.freeRows
	if priv := s.privileged(); priv != nil && priv != w.CTA {
		avail -= s.reserveFor(priv)
	}
	if need > avail {
		s.allocStalls++
		return false
	}
	s.freeRows -= need
	s.backed[w] = s.backed[w].Union(in.Touches())
	s.allocs += uint64(need)
	return true
}

// OnIssued frees rows whose registers die at this instruction, using the
// compiler's dead-value annotations.
func (s *rfvState) OnIssued(w *Warp, in *isa.Instr, now int64) {
	if len(in.DeadAfter) == 0 {
		return
	}
	b := s.backed[w]
	for _, r := range in.DeadAfter {
		if b.Has(r) {
			b = b.Remove(r)
			s.freeRows++
			s.frees++
		}
	}
	s.backed[w] = b
}

// OnWarpExit returns all of the warp's remaining rows.
func (s *rfvState) OnWarpExit(w *Warp) {
	s.freeRows += s.backed[w].Count()
	delete(s.backed, w)
}

func (s *rfvState) Counters() (uint64, uint64, uint64) {
	// Map allocation traffic onto the acquire counters so the generic
	// stats report something meaningful for RFV too.
	return s.allocs + s.allocStalls, s.allocs, s.frees
}
