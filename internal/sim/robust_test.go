package sim

import (
	"errors"
	"strings"
	"testing"

	"regmutex/internal/core"
	"regmutex/internal/isa"
)

// TestIdleThresholdBoundary pins the idle-deadlock watchdog to its named
// Timing knob: a machine that never issues and never schedules an event
// must be declared dead after exactly IdleDeadlockThreshold idle cycles.
func TestIdleThresholdBoundary(t *testing.T) {
	k := &isa.Kernel{Name: "empty", GridCTAs: 1}
	for _, thr := range []int64{1, 4, 7} {
		d := &Device{
			Kernel: k,
			Policy: NewStaticPolicy(smallCfg()),
			Timing: Timing{MaxCycles: 1000, IdleDeadlockThreshold: thr},
		}
		_, err := d.Run()
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("thr=%d: err = %v, want ErrDeadlock", thr, err)
		}
		var de *DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("thr=%d: err = %T, want *DeadlockError", thr, err)
		}
		if de.Kind != WedgeDeadlock {
			t.Fatalf("thr=%d: kind = %v, want WedgeDeadlock", thr, de.Kind)
		}
		if de.Cycle != thr {
			t.Errorf("thr=%d: declared dead at cycle %d, want exactly the threshold", thr, de.Cycle)
		}
	}

	// Zero means "use the default".
	d := &Device{
		Kernel: k,
		Policy: NewStaticPolicy(smallCfg()),
		Timing: Timing{MaxCycles: 1000},
	}
	_, err := d.Run()
	var de *DeadlockError
	if !errors.As(err, &de) || de.Cycle != DefaultIdleDeadlockThreshold {
		t.Fatalf("default threshold: got %v, want deadlock at cycle %d", err, DefaultIdleDeadlockThreshold)
	}
}

// TestNoFreeWarpSlotTyped pins the takeSlot failure path: exhausting the
// slot array latches a typed ErrNoWarpSlot instead of panicking, and Run
// surfaces it.
func TestNoFreeWarpSlotTyped(t *testing.T) {
	cfg := smallCfg()
	cfg.NumSMs = 1
	k := vecAdd(64, 32, 2)
	pre, err := core.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(cfg, DefaultTiming(), pre, NewStaticPolicy(cfg), make([]uint64, k.GlobalMemWords))
	if err != nil {
		t.Fatal(err)
	}
	sm := d.sms[0]
	for i := range sm.slots {
		sm.slots[i] = true
	}
	if idx := sm.takeSlot(); idx != -1 {
		t.Fatalf("takeSlot on a full SM = %d, want -1", idx)
	}
	_, err = d.Run()
	if !errors.Is(err, ErrNoWarpSlot) {
		t.Fatalf("Run() = %v, want ErrNoWarpSlot", err)
	}
	if !strings.Contains(err.Error(), "SM0") {
		t.Errorf("diagnostic does not name the SM: %v", err)
	}
}

// spinKernel loops essentially forever (2^40 iterations).
func spinKernel(threads int) *isa.Kernel {
	b := isa.NewBuilder("spin", 8, 2, threads)
	b.SetGrid(1)
	b.SetGlobalMem(64)
	b.MovSpecial(0, isa.SpecTID)
	b.Mov(1, isa.Imm(0))
	b.Label("top")
	b.IAdd(1, isa.R(1), isa.Imm(1))
	b.Setp(isa.PReg(0), isa.CmpLT, isa.R(1), isa.Imm(1<<40))
	b.BraIf(isa.PReg(0), "top")
	b.StGlobal(isa.R(0), 0, isa.R(1))
	b.Exit()
	return b.MustKernel()
}

// TestMaxCyclesIsTypedLivelock pins the last-resort ceiling: a kernel
// that is busy but never finishes aborts with a *DeadlockError of kind
// WedgeMaxCycles that classifies as ErrLivelock (it made progress, so it
// is not a deadlock).
func TestMaxCyclesIsTypedLivelock(t *testing.T) {
	cfg := smallCfg()
	cfg.NumSMs = 1
	pre, err := core.Prepare(spinKernel(32))
	if err != nil {
		t.Fatal(err)
	}
	timing := DefaultTiming()
	timing.MaxCycles = 10_000
	d, err := NewDevice(cfg, timing, pre, NewStaticPolicy(cfg), make([]uint64, 64))
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run() = %v, want *DeadlockError", err)
	}
	if de.Kind != WedgeMaxCycles {
		t.Fatalf("kind = %v, want WedgeMaxCycles", de.Kind)
	}
	if !errors.Is(err, ErrLivelock) || errors.Is(err, ErrDeadlock) {
		t.Fatalf("MaxCycles abort misclassified: %v", err)
	}
	if de.MaxCycles != timing.MaxCycles {
		t.Errorf("diagnostic MaxCycles = %d, want %d", de.MaxCycles, timing.MaxCycles)
	}
}

// blockAcqPolicy wraps another policy and refuses every ACQ, counting
// the refused attempts — a minimal in-package stand-in for a policy bug
// that starves acquires while the rest of the machine stays busy.
type blockAcqPolicy struct{ inner Policy }

func (p blockAcqPolicy) Name() string                  { return p.inner.Name() + "+blockacq" }
func (p blockAcqPolicy) CTAsPerSM(k *isa.Kernel) int   { return p.inner.CTAsPerSM(k) }
func (p blockAcqPolicy) NewSMState(sm *SM) PolicyState { return &blockAcqState{inner: p.inner.NewSMState(sm)} }

type blockAcqState struct {
	inner    PolicyState
	attempts uint64
}

func (s *blockAcqState) TryIssue(w *Warp, in *isa.Instr, now int64) bool {
	if in.Op == isa.OpAcq {
		s.attempts++
		return false
	}
	return s.inner.TryIssue(w, in, now)
}
func (s *blockAcqState) OnIssued(w *Warp, in *isa.Instr, now int64) { s.inner.OnIssued(w, in, now) }
func (s *blockAcqState) OnCTALaunch(cta *CTAState)                  { s.inner.OnCTALaunch(cta) }
func (s *blockAcqState) OnCTARetire(cta *CTAState)                  { s.inner.OnCTARetire(cta) }
func (s *blockAcqState) OnWarpExit(w *Warp)                         { s.inner.OnWarpExit(w) }
func (s *blockAcqState) Priority(w *Warp) int                       { return s.inner.Priority(w) }
func (s *blockAcqState) Counters() (uint64, uint64, uint64) {
	a, ok, rel := s.inner.Counters()
	return a + s.attempts, ok, rel
}

// TestLivelockWatchdogCatchesAcquireSpin pins the progress-epoch
// watchdog: one warp spins uselessly (the machine issues every cycle, so
// the idle detector never fires) while another retries a starved acquire
// forever. The epoch watchdog must flag the livelock long before
// MaxCycles and count the stuck warp.
func TestLivelockWatchdogCatchesAcquireSpin(t *testing.T) {
	b := isa.NewBuilder("acqspin", 8, 2, 64)
	b.SetGrid(1)
	b.SetGlobalMem(64)
	b.MovSpecial(0, isa.SpecTID)
	b.Setp(isa.PReg(0), isa.CmpLT, isa.R(0), isa.Imm(32))
	b.BraIfNot(isa.PReg(0), "acq")
	// Warp 0: spin forever so "issued" keeps growing.
	b.Mov(1, isa.Imm(0))
	b.Label("spin")
	b.IAdd(1, isa.R(1), isa.Imm(1))
	b.Setp(isa.PReg(1), isa.CmpLT, isa.R(1), isa.Imm(1<<40))
	b.BraIf(isa.PReg(1), "spin")
	// Warp 1: an acquire the wrapped policy never grants.
	b.Label("acq")
	b.Acq()
	b.Rel()
	b.Exit()
	k := b.MustKernel()
	k.BaseSet, k.ExtSet = 6, 2
	pre, err := core.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	pre.BaseSet, pre.ExtSet = 6, 2

	cfg := smallCfg()
	cfg.NumSMs = 1
	timing := DefaultTiming()
	timing.MaxCycles = 1_000_000
	timing.ProgressEpoch = 2_000
	timing.LivelockEpochs = 2
	d, err := NewDevice(cfg, timing, pre, blockAcqPolicy{inner: NewStaticPolicy(cfg)}, make([]uint64, 64))
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Run()
	if !errors.Is(err, ErrLivelock) {
		t.Fatalf("Run() = %v, want ErrLivelock", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run() = %T, want *DeadlockError", err)
	}
	if de.Kind != WedgeLivelock {
		t.Fatalf("kind = %v, want WedgeLivelock (not the MaxCycles backstop)", de.Kind)
	}
	if de.Cycle >= timing.MaxCycles {
		t.Errorf("watchdog fired at cycle %d, not before MaxCycles %d", de.Cycle, timing.MaxCycles)
	}
	if de.StuckWarps < 1 {
		t.Errorf("diagnostic counts no stuck warps: %v", de)
	}
	if !strings.Contains(err.Error(), "issued nothing last epoch") {
		t.Errorf("diagnostic omits the per-warp progress clause: %v", err)
	}
}
