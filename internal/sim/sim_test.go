package sim

import (
	"testing"

	"regmutex/internal/core"
	"regmutex/internal/isa"
	"regmutex/internal/occupancy"
)

// smallCfg is a scaled-down machine so unit tests stay fast.
func smallCfg() occupancy.Config {
	c := occupancy.GTX480()
	c.NumSMs = 2
	return c
}

func run(t *testing.T, cfg occupancy.Config, k *isa.Kernel, pol Policy, global []uint64) (Stats, []uint64) {
	t.Helper()
	prepared, err := core.Prepare(k)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	d, err := NewDevice(cfg, DefaultTiming(), prepared, pol, global)
	if err != nil {
		t.Fatalf("device: %v", err)
	}
	st, err := d.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return st, d.Global
}

// vecAdd computes out[i] = a[i] + b[i] over n elements.
// Layout: a at [0,n), b at [n,2n), out at [2n,3n).
func vecAdd(n, threads, ctas int) *isa.Kernel {
	b := isa.NewBuilder("vecadd", 8, 2, threads)
	b.MovSpecial(0, isa.SpecTID)
	b.MovSpecial(1, isa.SpecCTAID)
	b.IMad(2, isa.R(1), isa.Imm(int64(threads)), isa.R(0)) // gid
	b.LdGlobal(3, isa.R(2), 0)
	b.LdGlobal(4, isa.R(2), int64(n))
	b.IAdd(5, isa.R(3), isa.R(4))
	b.StGlobal(isa.R(2), int64(2*n), isa.R(5))
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = ctas
	k.GlobalMemWords = 3 * n
	return k
}

func TestVecAddFunctional(t *testing.T) {
	const n = 512
	threads := 128
	k := vecAdd(n, threads, n/threads)
	global := make([]uint64, 3*n)
	for i := 0; i < n; i++ {
		global[i] = uint64(i)
		global[n+i] = uint64(3 * i)
	}
	st, mem := run(t, smallCfg(), k, nil, global)
	for i := 0; i < n; i++ {
		if mem[2*n+i] != uint64(4*i) {
			t.Fatalf("out[%d] = %d, want %d", i, mem[2*n+i], 4*i)
		}
	}
	if st.Cycles <= 0 || st.Instructions <= 0 {
		t.Errorf("suspicious stats: %+v", st)
	}
	if st.OOBAccesses != 0 {
		t.Errorf("OOB accesses: %d", st.OOBAccesses)
	}
	// 4 CTAs × 4 warps × 8 instructions.
	if want := int64(4 * 4 * 8); st.Instructions != want {
		t.Errorf("instructions = %d, want %d", st.Instructions, want)
	}
}

func TestDivergentBranch(t *testing.T) {
	// Even tids store 1, odd tids store 2; all reconverge and add 10.
	b := isa.NewBuilder("diverge", 8, 2, 64)
	b.MovSpecial(0, isa.SpecTID)
	b.And(1, isa.R(0), isa.Imm(1))
	b.Setp(0, isa.CmpEQ, isa.R(1), isa.Imm(0))
	b.BraIf(0, "even")
	b.Mov(2, isa.Imm(2))
	b.Bra("join")
	b.Label("even")
	b.Mov(2, isa.Imm(1))
	b.Label("join")
	b.IAdd(2, isa.R(2), isa.Imm(10))
	b.StGlobal(isa.R(0), 0, isa.R(2))
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = 1
	k.GlobalMemWords = 64

	_, mem := run(t, smallCfg(), k, nil, nil)
	for i := 0; i < 64; i++ {
		want := uint64(11)
		if i%2 == 1 {
			want = 12
		}
		if mem[i] != want {
			t.Fatalf("mem[%d] = %d, want %d", i, mem[i], want)
		}
	}
}

func TestDataDependentLoop(t *testing.T) {
	// Each thread sums 0..(input[tid]-1) with a data-dependent trip
	// count, exercising divergent loop exits.
	b := isa.NewBuilder("loop", 8, 2, 32)
	b.MovSpecial(0, isa.SpecTID)
	b.LdGlobal(1, isa.R(0), 0) // trip count
	b.Mov(2, isa.Imm(0))       // acc
	b.Mov(3, isa.Imm(0))       // i
	b.Label("top")
	b.Setp(0, isa.CmpGE, isa.R(3), isa.R(1))
	b.BraIf(0, "done")
	b.IAdd(2, isa.R(2), isa.R(3))
	b.IAdd(3, isa.R(3), isa.Imm(1))
	b.Bra("top")
	b.Label("done")
	b.StGlobal(isa.R(0), 32, isa.R(2))
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = 1
	k.GlobalMemWords = 64

	global := make([]uint64, 64)
	for i := 0; i < 32; i++ {
		global[i] = uint64(i % 7)
	}
	_, mem := run(t, smallCfg(), k, nil, global)
	for i := 0; i < 32; i++ {
		n := uint64(i % 7)
		want := n * (n - 1) / 2
		if n == 0 {
			want = 0
		}
		if mem[32+i] != want {
			t.Fatalf("thread %d: sum = %d, want %d", i, mem[32+i], want)
		}
	}
}

func TestBarrierAndSharedMemory(t *testing.T) {
	// CTA-wide tree reduction in shared memory: thread 0 stores the sum.
	threads := 64
	b := isa.NewBuilder("reduce", 10, 2, threads)
	b.MovSpecial(0, isa.SpecTID)
	b.MovSpecial(1, isa.SpecCTAID)
	b.IMad(2, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
	b.LdGlobal(3, isa.R(2), 0)
	b.StShared(isa.R(0), 0, isa.R(3))
	b.Bar()
	// stride loop: for s = threads/2; s > 0; s >>= 1
	b.Mov(4, isa.Imm(int64(threads/2)))
	b.Label("loop")
	b.Setp(0, isa.CmpLT, isa.R(0), isa.R(4)) // tid < s?
	b.BraIfNot(0, "skip")
	b.IAdd(5, isa.R(0), isa.R(4))
	b.LdShared(6, isa.R(5), 0)
	b.LdShared(7, isa.R(0), 0)
	b.IAdd(7, isa.R(7), isa.R(6))
	b.StShared(isa.R(0), 0, isa.R(7))
	b.Label("skip")
	b.Bar()
	b.Shr(4, isa.R(4), isa.Imm(1))
	b.Setp(1, isa.CmpGT, isa.R(4), isa.Imm(0))
	b.BraIf(1, "loop")
	// thread 0 writes result
	b.Setp(0, isa.CmpEQ, isa.R(0), isa.Imm(0))
	b.BraIfNot(0, "end")
	b.LdShared(8, isa.R(0), 0)
	b.StGlobal(isa.R(1), 128, isa.R(8))
	b.Label("end")
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = 2
	k.SharedMemWords = threads
	k.GlobalMemWords = 128 + 2

	global := make([]uint64, 130)
	var want [2]uint64
	for c := 0; c < 2; c++ {
		for i := 0; i < threads; i++ {
			v := uint64(c*1000 + i)
			global[c*threads+i] = v
			want[c] += v
		}
	}
	_, mem := run(t, smallCfg(), k, nil, global)
	for c := 0; c < 2; c++ {
		if mem[128+c] != want[c] {
			t.Fatalf("CTA %d sum = %d, want %d", c, mem[128+c], want[c])
		}
	}
}

// memPeakKernel is register-hungry and memory-latency-bound: each thread
// streams through memory and holds a wide FMA peak, the shape the paper's
// occupancy-limited applications have.
func memPeakKernel(name string, numRegs, threads, ctas, iters int) *isa.Kernel {
	b := isa.NewBuilder(name, numRegs, 2, threads)
	b.MovSpecial(0, isa.SpecTID)
	b.MovSpecial(1, isa.SpecCTAID)
	b.IMad(2, isa.R(1), isa.Imm(int64(threads)), isa.R(0)) // gid
	b.Mov(3, isa.Imm(int64(iters)))                        // loop counter
	b.Mov(4, isa.Imm(0))                                   // acc
	b.Label("top")
	b.LdGlobal(5, isa.R(2), 0)
	// Wide peak: chain through the upper registers.
	b.IAdd(6, isa.R(5), isa.Imm(1))
	for r := 7; r < numRegs; r++ {
		b.IAdd(isa.Reg(r), isa.R(isa.Reg(r-1)), isa.Imm(int64(r)))
	}
	b.IAdd(4, isa.R(4), isa.R(isa.Reg(numRegs-1)))
	b.IAdd(2, isa.R(2), isa.Imm(int64(threads)))
	b.ISub(3, isa.R(3), isa.Imm(1))
	b.Setp(0, isa.CmpGT, isa.R(3), isa.Imm(0))
	b.BraIf(0, "top")
	b.StGlobal(isa.R(2), 0, isa.R(4))
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = ctas
	k.GlobalMemWords = 1 << 14
	return k
}

func TestRegMutexMatchesStaticFunctionally(t *testing.T) {
	cfg := smallCfg()
	k := memPeakKernel("funceq", 24, 512, 4, 6)

	global := make([]uint64, k.GlobalMemWords)
	for i := range global {
		global[i] = uint64(i * 7)
	}
	g1 := append([]uint64(nil), global...)
	g2 := append([]uint64(nil), global...)

	_, memStatic := run(t, cfg, k, NewStaticPolicy(cfg), g1)

	res, err := core.Transform(k, core.Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disabled() {
		t.Fatalf("expected transform: %s", res.Split.Reason)
	}
	d, err := NewDevice(cfg, DefaultTiming(), res.Kernel, NewRegMutexPolicy(cfg), g2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range memStatic {
		if memStatic[i] != d.Global[i] {
			t.Fatalf("memory diverges at %d: static=%d regmutex=%d", i, memStatic[i], d.Global[i])
		}
	}
	if st.AcquireAttempts == 0 || st.Releases == 0 {
		t.Errorf("no acquire/release activity: %+v", st)
	}
}

func TestRegMutexImprovesRegisterLimitedKernel(t *testing.T) {
	// The headline shape (Figure 7): a register-limited, memory-bound
	// kernel should run in fewer cycles under RegMutex because more
	// warps hide the memory latency.
	cfg := smallCfg()
	k := memPeakKernel("boost", 24, 512, 6, 8)

	stStatic, _ := run(t, cfg, k, NewStaticPolicy(cfg), nil)

	res, err := core.Transform(k, core.Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disabled() {
		t.Fatalf("transform disabled: %s", res.Split.Reason)
	}
	if res.RegMutexOcc.WarpsPerSM <= res.BaselineOcc.WarpsPerSM {
		t.Fatalf("occupancy did not improve: %d -> %d",
			res.BaselineOcc.WarpsPerSM, res.RegMutexOcc.WarpsPerSM)
	}
	d, err := NewDevice(cfg, DefaultTiming(), res.Kernel, NewRegMutexPolicy(cfg), nil)
	if err != nil {
		t.Fatal(err)
	}
	stRM, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stRM.Cycles >= stStatic.Cycles {
		t.Errorf("RegMutex did not help: static %d cycles, regmutex %d cycles",
			stStatic.Cycles, stRM.Cycles)
	}
	t.Logf("static=%d regmutex=%d (%.1f%% reduction), acquires=%d/%d",
		stStatic.Cycles, stRM.Cycles,
		100*(1-float64(stRM.Cycles)/float64(stStatic.Cycles)),
		stRM.AcquireSuccesses, stRM.AcquireAttempts)
}

func TestOWFAndRFVRun(t *testing.T) {
	cfg := smallCfg()
	k := memPeakKernel("cmp", 24, 512, 4, 4)
	global := make([]uint64, k.GlobalMemWords)
	for i := range global {
		global[i] = uint64(i)
	}

	_, memStatic := run(t, cfg, k, NewStaticPolicy(cfg), append([]uint64(nil), global...))
	_, memOWF := run(t, cfg, k, NewOWFPolicy(cfg, 18), append([]uint64(nil), global...))
	_, memRFV := run(t, cfg, k, NewRFVPolicy(cfg), append([]uint64(nil), global...))

	for i := range memStatic {
		if memStatic[i] != memOWF[i] {
			t.Fatalf("OWF memory diverges at %d", i)
		}
		if memStatic[i] != memRFV[i] {
			t.Fatalf("RFV memory diverges at %d", i)
		}
	}
}

func TestPairedPolicyRuns(t *testing.T) {
	cfg := smallCfg()
	k := memPeakKernel("paired", 24, 512, 4, 4)
	res, err := core.Transform(k, core.Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(cfg, DefaultTiming(), res.Kernel, NewPairedPolicy(cfg), nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.CTAs != k.GridCTAs {
		t.Errorf("CTAs = %d, want %d", st.CTAs, k.GridCTAs)
	}
}

func TestGuardedInstructions(t *testing.T) {
	// Predicated execution without branches: @p add, @!p sub.
	b := isa.NewBuilder("pred", 8, 2, 32)
	b.MovSpecial(0, isa.SpecTID)
	b.And(1, isa.R(0), isa.Imm(1))
	b.Setp(0, isa.CmpEQ, isa.R(1), isa.Imm(0))
	b.Mov(2, isa.Imm(100))
	b.If(0)
	b.IAdd(2, isa.R(2), isa.Imm(5)) // even lanes: 105
	b.IfNot(0)
	b.ISub(2, isa.R(2), isa.Imm(5)) // odd lanes: 95
	b.StGlobal(isa.R(0), 0, isa.R(2))
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = 1
	k.GlobalMemWords = 32
	_, mem := run(t, smallCfg(), k, nil, nil)
	for i := 0; i < 32; i++ {
		want := uint64(105)
		if i%2 == 1 {
			want = 95
		}
		if mem[i] != want {
			t.Fatalf("mem[%d] = %d, want %d", i, mem[i], want)
		}
	}
}

func TestSelp(t *testing.T) {
	b := isa.NewBuilder("selp", 8, 2, 32)
	b.MovSpecial(0, isa.SpecTID)
	b.Setp(0, isa.CmpLT, isa.R(0), isa.Imm(16))
	b.If(0)
	b.Selp(1, isa.Imm(7), isa.Imm(9))
	b.StGlobal(isa.R(0), 0, isa.R(1))
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = 1
	k.GlobalMemWords = 32
	_, mem := run(t, smallCfg(), k, nil, nil)
	for i := 0; i < 32; i++ {
		want := uint64(7)
		if i >= 16 {
			want = 9
		}
		if mem[i] != want {
			t.Fatalf("mem[%d] = %d, want %d", i, mem[i], want)
		}
	}
}

func TestFloatPipeline(t *testing.T) {
	// out = sqrt(a)*2 + sin(0) -> just sqrt(a)*2, checked approximately
	// by storing the truncated value scaled by 1000.
	b := isa.NewBuilder("fp", 10, 2, 32)
	b.MovSpecial(0, isa.SpecTID)
	b.LdGlobal(1, isa.R(0), 0)
	b.I2F(2, isa.R(1))
	b.FSqrt(3, isa.R(2))
	b.FMul(4, isa.R(3), isa.FImm(2.0))
	b.FMul(4, isa.R(4), isa.FImm(1000.0))
	b.F2I(5, isa.R(4))
	b.StGlobal(isa.R(0), 32, isa.R(5))
	b.Exit()
	k := b.MustKernel()
	k.GridCTAs = 1
	k.GlobalMemWords = 64
	global := make([]uint64, 64)
	for i := 0; i < 32; i++ {
		global[i] = uint64(i * i) // perfect squares
	}
	_, mem := run(t, smallCfg(), k, nil, global)
	for i := 0; i < 32; i++ {
		want := uint64(i * 2 * 1000)
		if mem[32+i] != want {
			t.Fatalf("mem[%d] = %d, want %d", 32+i, mem[32+i], want)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Hand-build an ill-formed kernel: warp 0 of each pair acquires and
	// never releases while the partner waits at its own acquire; with a
	// single SRP section this wedges. The simulator must report it.
	b := isa.NewBuilder("wedge", 24, 1, 64)
	b.Acq()
	// Touch a high register while holding.
	b.Mov(20, isa.Imm(1))
	b.Label("spin")
	b.Acq() // redundant self-acquire is fine; partner's first acquire blocks
	b.IAdd(20, isa.R(20), isa.Imm(1))
	b.Setp(0, isa.CmpLT, isa.R(20), isa.Imm(1000000))
	b.BraIf(0, "spin")
	b.Rel()
	b.Exit()
	k := b.MustKernel()
	k.NumPRegs = 1
	k.GridCTAs = 1
	k.BaseSet, k.ExtSet = 18, 6
	cfg := smallCfg()
	cfg.NumSMs = 1

	prepared, err := core.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}
	prepared.BaseSet, prepared.ExtSet = 18, 6
	d, err := NewDevice(cfg, DefaultTiming(), prepared, NewRegMutexPolicy(cfg), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the SRP to one section to force contention... the policy
	// computed sections already; with 2 warps and plenty of SRP both
	// can hold, so this kernel actually completes. Accept either a
	// clean completion or a detected deadlock; what must not happen is
	// a hang, which the MaxCycles guard converts into an error.
	d.Timing.MaxCycles = 20_000_000
	if _, err := d.Run(); err != nil {
		t.Logf("run ended with: %v", err)
	}
}

func TestDeviceSampler(t *testing.T) {
	cfg := smallCfg()
	k := memPeakKernel("sampler", 24, 256, 3, 4)
	res, err := core.Transform(k, core.Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(cfg, DefaultTiming(), res.Kernel, NewRegMutexPolicy(cfg), nil)
	if err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	d.SampleInterval = 128
	d.Sampler = func(s Sample) { samples = append(samples, s) }
	st, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 3 {
		t.Fatalf("only %d samples over %d cycles", len(samples), st.Cycles)
	}
	prev := int64(-1)
	sawWarps, sawHeld := false, false
	for _, s := range samples {
		if s.Cycle <= prev {
			t.Fatal("samples not monotone in time")
		}
		prev = s.Cycle
		if s.ResidentWarps > cfg.NumSMs*cfg.MaxWarpsPerSM {
			t.Fatalf("resident warps %d exceeds capacity", s.ResidentWarps)
		}
		if s.ResidentWarps > 0 {
			sawWarps = true
		}
		if s.HeldSections > 0 {
			sawHeld = true
		}
	}
	if !sawWarps || !sawHeld {
		t.Errorf("sampler never observed warps (%v) or held sections (%v)", sawWarps, sawHeld)
	}
}
