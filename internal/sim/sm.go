package sim

import (
	"fmt"
	"math"

	"regmutex/internal/isa"
)

// CTAState is one resident CTA on an SM.
type CTAState struct {
	ID     int
	kern   *isa.Kernel
	global []uint64 // the kernel's global memory
	warps  []*Warp
	shared []uint64

	barWaiting int // warps currently parked at the barrier
	doneWarps  int
}

func (c *CTAState) warpBase(w *Warp) int {
	for i, x := range c.warps {
		if x == w {
			return i
		}
	}
	return 0
}

func (c *CTAState) loadShared(addr int64) uint64 {
	if len(c.shared) == 0 {
		return 0
	}
	i := int(addr) % len(c.shared)
	if i < 0 {
		i += len(c.shared)
	}
	return c.shared[i]
}

func (c *CTAState) storeShared(addr int64, v uint64) {
	if len(c.shared) == 0 {
		return
	}
	i := int(addr) % len(c.shared)
	if i < 0 {
		i += len(c.shared)
	}
	c.shared[i] = v
}

// liveWarps returns warps that have not finished.
func (c *CTAState) liveWarps() int { return len(c.warps) - c.doneWarps }

// eventHeap is a typed min-heap of future completion times, used both for
// idle-cycle skipping and in-flight memory accounting. It deliberately
// does not go through container/heap: the interface{} round-trip there
// boxes every int64 push, which on the memory-completion path means an
// allocation per issued load/store.
type eventHeap []int64

// push inserts t, keeping the min-heap property.
func (h *eventHeap) push(t int64) {
	*h = append(*h, t)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

// pop removes and returns the minimum. The heap must be non-empty.
func (h *eventHeap) pop() int64 {
	s := *h
	min := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r] < s[l] {
			m = r
		}
		if s[i] <= s[m] {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return min
}

// min returns the smallest element without removing it.
func (h eventHeap) min() int64 { return h[0] }

// schedCand is one runnable warp in a scheduler's pick order.
type schedCand struct {
	w    *Warp
	p    int // policy priority (lower runs first)
	rank int // tiebreak: Seq (oldest-first) or rotated Widx (round-robin)
}

// scheduler is one of the SM's warp schedulers (greedy-then-oldest).
type scheduler struct {
	id   int
	last *Warp // greedy: keep issuing from the same warp

	// lastRes is the slot's most recent per-cycle attribution; settleTo
	// multiplies it over cycles the SM slept through.
	lastRes slotResult

	// cands caches the warps mapped to this scheduler (Widx % nsched ==
	// id), rebuilt only when SM warp membership changes (launch/retire);
	// order is the scratch pick list reused every cycle.
	cands   []*Warp
	candGen uint64
	order   []schedCand
}

// rebuildCands refreshes the scheduler's mapped-warp cache from sm.warps
// (which is kept in launch = Seq order).
func (sched *scheduler) rebuildCands(sm *SM) {
	sched.cands = sched.cands[:0]
	n := len(sm.schedulers)
	for _, w := range sm.warps {
		if w.Widx%n == sched.id {
			sched.cands = append(sched.cands, w)
		}
	}
	sched.candGen = sm.warpGen
}

// slotResult is one scheduler slot's attribution for one cycle: the
// cause charged and the warp it was charged to (nil for slot-level
// causes like no-warp/empty).
type slotResult struct {
	cause StallCause
	warp  *Warp
}

// issueOutcome is why one tryIssue attempt did or did not issue.
type issueOutcome int8

const (
	outIssued     issueOutcome = iota
	outSkip                    // finished / at barrier: not a chargeable stall
	outScoreboard              // pending register or predicate writeback
	outSFU                     // SFU port taken this cycle
	outMem                     // global-memory queue full
	outPolicy                  // policy gate refused (acquire-wait)
)

// stallCause maps a failed attempt to its charged cause. Structural
// back-pressure (memory queue, SFU port) folds into CauseMemory.
func (o issueOutcome) stallCause() StallCause {
	switch o {
	case outScoreboard:
		return CauseScoreboard
	case outSFU, outMem:
		return CauseMemory
	case outPolicy:
		return CauseAcquire
	default:
		return causeInvalid
	}
}

// sleepForever marks an SM with no pending events and no policy retries:
// nothing on it can change until a device-level action (CTA launch)
// resets wakeAt.
const sleepForever = int64(math.MaxInt64)

// pendingStore is one buffered global-memory write. Stores commit at the
// end of the cycle, in SM order (see DESIGN.md §11): during a cycle every
// load reads the cycle-start state, which is what makes the parallel
// engine's results independent of worker count.
type pendingStore struct {
	mem  []uint64
	addr int64
	val  uint64
}

// obsRec is one buffered observer callback (parallel engine only): either
// a coarse Event or a per-slot StallSlot, preserving within-SM order.
type obsRec struct {
	isEvent bool
	ev      Event
	slot    StallSlot
}

// SM is one streaming multiprocessor.
type SM struct {
	dev *Device
	id  int

	ctas       []*CTAState
	warps      []*Warp // all resident warps, in launch (Seq) order
	slots      []bool  // warp slot occupancy, index = Widx
	schedulers []scheduler

	policy PolicyState

	memInFlight  int
	memComplete  eventHeap // completion times of outstanding global requests
	wakeups      eventHeap // scoreboard writeback times (idle skipping)
	sfuThisCycle int

	// warpGen bumps whenever warp membership changes (CTA launch or
	// retire); schedulers rebuild their mapped-warp caches lazily on it.
	warpGen uint64

	// wakeAt is the next cycle this SM must step. An SM that issued
	// nothing, saw no policy-gate retry, and has no pending event sleeps
	// until its next scoreboard/memory event (or forever, until a device
	// action wakes it); slept cycles are charged lazily by settleTo.
	wakeAt         int64
	chargedThrough int64 // stall attribution is complete for cycles < chargedThrough
	sawPolicyBlock bool  // a policy gate refused issue this cycle (acquire retry)

	// pendingRetire holds CTAs whose last warp finished this cycle;
	// retirement and backfill run at the cycle-end barrier in SM order so
	// the dispatcher's global counters stay deterministic at any -par.
	pendingRetire []*CTAState

	// stores buffers this cycle's global-memory writes (committed at the
	// cycle-end barrier in SM order).
	stores []pendingStore

	// obsBuf, when buffered is set (parallel engine with an observer
	// attached), collects this cycle's observer callbacks for in-order
	// replay at the barrier.
	buffered bool
	obsBuf   []obsRec

	// Stats.
	issued        int64
	acqRelIssued  int64 // ACQ/REL primitives among issued (differential runs subtract these)
	cyclesActive  int64
	warpsLaunched int64
	occupancySum  int64 // resident warps integrated over active cycles
	rfReads       int64 // register file row reads (warp-wide)
	rfWrites      int64 // register file row writes
	oobAccesses   int64 // out-of-bounds global accesses (per-SM for determinism)
	warpsRetired  int64

	// stalls is the SM's per-cause scheduler-slot attribution: exactly
	// one cause per scheduler per stepped cycle (slept cycles charged
	// in bulk), so its sum is always cycles × SchedulersPerSM.
	stalls StallBreakdown
}

func newSM(dev *Device, id int) *SM {
	sm := &SM{dev: dev, id: id}
	sm.slots = make([]bool, dev.Config.MaxWarpsPerSM)
	for s := 0; s < dev.Config.SchedulersPerSM; s++ {
		sm.schedulers = append(sm.schedulers, scheduler{id: s})
	}
	return sm
}

// freeSlots returns how many warp slots are unoccupied.
func (sm *SM) freeSlots() int {
	n := 0
	for _, used := range sm.slots {
		if !used {
			n++
		}
	}
	return n
}

// launchCTA places a CTA of the device's (single) kernel onto the SM.
func (sm *SM) launchCTA(id int) {
	sm.launchCTAOf(sm.dev.Kernel, 0, id)
}

// launchCTAOf places a CTA of an arbitrary kernel onto the SM (the
// multi-kernel path; kidx selects its global memory).
func (sm *SM) launchCTAOf(k *isa.Kernel, kidx, id int) {
	if sm.freeSlots() < k.WarpsPerCTA() {
		sm.dev.fail(fmt.Errorf("sim: SM%d: %w for CTA %d of kernel %s (%d free, %d needed)",
			sm.id, ErrNoWarpSlot, id, k.Name, sm.freeSlots(), k.WarpsPerCTA()))
		return
	}
	cta := &CTAState{ID: id, kern: k, global: sm.dev.GlobalOf(kidx)}
	if k.SharedMemWords > 0 {
		cta.shared = make([]uint64, k.SharedMemWords)
	}
	threads := k.ThreadsPerCTA
	for wi := 0; wi < k.WarpsPerCTA(); wi++ {
		lanes := threads - wi*isa.WarpSize
		if lanes > isa.WarpSize {
			lanes = isa.WarpSize
		}
		widx := sm.takeSlot()
		if widx < 0 {
			return
		}
		w := newWarp(k, int(sm.dev.warpSeq), widx, cta, lanes)
		sm.dev.warpSeq++
		cta.warps = append(cta.warps, w)
		sm.warps = append(sm.warps, w)
		sm.warpsLaunched++
	}
	sm.ctas = append(sm.ctas, cta)
	sm.warpGen++
	sm.policy.OnCTALaunch(cta)
}

func (sm *SM) takeSlot() int {
	for i, used := range sm.slots {
		if !used {
			sm.slots[i] = true
			return i
		}
	}
	// Residency accounting should prevent this; latch a typed error the
	// device surfaces from Run (or NewDevice) instead of panicking.
	sm.dev.fail(fmt.Errorf("sim: SM%d: %w with %d warps resident", sm.id, ErrNoWarpSlot, len(sm.warps)))
	return -1
}

// retireCTA frees a finished CTA's resources. Both removals preserve
// order in place (sm.warps must stay Seq-sorted for the schedulers) and
// nil out the vacated tail so retired CTAs and warps are collectable
// instead of pinned by the reused backing arrays.
func (sm *SM) retireCTA(cta *CTAState) {
	for _, w := range cta.warps {
		sm.slots[w.Widx] = false
	}
	for i, c := range sm.ctas {
		if c == cta {
			copy(sm.ctas[i:], sm.ctas[i+1:])
			sm.ctas[len(sm.ctas)-1] = nil
			sm.ctas = sm.ctas[:len(sm.ctas)-1]
			break
		}
	}
	live := sm.warps[:0]
	for _, w := range sm.warps {
		if w.CTA != cta {
			live = append(live, w)
		}
	}
	for i := len(live); i < len(sm.warps); i++ {
		sm.warps[i] = nil
	}
	sm.warps = live
	sm.warpGen++
	sm.policy.OnCTARetire(cta)
}

// residentWarps returns the number of warps currently on the SM.
func (sm *SM) residentWarps() int { return len(sm.warps) }

// drainMemCompletions retires finished global requests.
func (sm *SM) drainMemCompletions(now int64) {
	for len(sm.memComplete) > 0 && sm.memComplete.min() <= now {
		sm.memComplete.pop()
		sm.memInFlight--
	}
}

// nextEvent returns the earliest future time anything changes on this SM,
// or -1 if nothing is pending.
func (sm *SM) nextEvent(now int64) int64 {
	next := int64(-1)
	if len(sm.memComplete) > 0 {
		if t := sm.memComplete.min(); t > now {
			next = t
		}
	}
	for len(sm.wakeups) > 0 && sm.wakeups.min() <= now {
		sm.wakeups.pop()
	}
	if len(sm.wakeups) > 0 {
		if t := sm.wakeups.min(); next < 0 || t < next {
			next = t
		}
	}
	return next
}

// loadGlobal reads kernel global memory. Loads always observe the
// cycle-start state: stores from the same cycle are still in the buffer.
func (sm *SM) loadGlobal(mem []uint64, addr int64) uint64 {
	n := int64(len(mem))
	if addr < 0 || addr >= n {
		sm.oobAccesses++
		if n == 0 {
			// Empty global segment: every access is out of bounds; loads
			// read a deterministic zero instead of dividing by zero below.
			return 0
		}
		addr = ((addr % n) + n) % n
	}
	return mem[addr]
}

// storeGlobal buffers a global-memory write; it commits at the cycle-end
// barrier in SM order (applyStores).
func (sm *SM) storeGlobal(mem []uint64, addr int64, v uint64) {
	sm.stores = append(sm.stores, pendingStore{mem: mem, addr: addr, val: v})
}

// applyStores commits the cycle's buffered global writes. Out-of-bounds
// accounting happens here (not at issue) so the count lands on the SM
// that issued the store regardless of engine.
func (sm *SM) applyStores() {
	for _, st := range sm.stores {
		n := int64(len(st.mem))
		addr := st.addr
		if addr < 0 || addr >= n {
			sm.oobAccesses++
			if n == 0 {
				continue // empty segment: drop the store (counted above)
			}
			addr = ((addr % n) + n) % n
		}
		st.mem[addr] = st.val
	}
	sm.stores = sm.stores[:0]
}

// emitEvent routes an SM-side event to the observer: directly in the
// serial engine, via the per-SM buffer (replayed at the barrier in SM
// order) in the parallel engine.
func (sm *SM) emitEvent(ev Event) {
	if sm.buffered {
		sm.obsBuf = append(sm.obsBuf, obsRec{isEvent: true, ev: ev})
		return
	}
	sm.dev.emit(ev)
}

// settleTo charges each scheduler slot's last attribution over the cycles
// the SM slept through (nothing steps while the SM sleeps, so the causes
// cannot change). This keeps the conservation law — stalls sum to
// cycles × SchedulersPerSM — intact at every point the audit layer or
// collectStats can observe.
func (sm *SM) settleTo(now int64) {
	n := now - sm.chargedThrough
	if n <= 0 {
		return
	}
	for s := range sm.schedulers {
		res := sm.schedulers[s].lastRes
		sm.stalls[res.cause] += n
		if res.warp != nil {
			res.warp.Stalls[res.cause] += n
		}
	}
	sm.chargedThrough = now
}

// step advances the SM by one cycle; returns the number of instructions
// issued. Every scheduler slot is charged to exactly one StallCause per
// step (the per-cycle attribution the observability layer is built on).
func (sm *SM) step(now int64) int {
	sm.settleTo(now)
	sm.drainMemCompletions(now)
	sm.sfuThisCycle = 0
	sm.sawPolicyBlock = false
	issued := 0
	obs := sm.dev.obs
	for s := range sm.schedulers {
		sched := &sm.schedulers[s]
		res := sm.issueSlot(sched, now)
		sched.lastRes = res
		sm.stalls[res.cause]++
		if res.warp != nil {
			res.warp.Stalls[res.cause]++
		}
		if res.cause == CauseIssued {
			issued++
		}
		if obs != nil {
			slot := StallSlot{Cycle: now, SM: sm.id, Scheduler: sched.id,
				Cause: res.cause, Warp: res.warp}
			if sm.buffered {
				sm.obsBuf = append(sm.obsBuf, obsRec{slot: slot})
			} else {
				obs.OnStall(slot)
			}
		}
	}
	if len(sm.warps) > 0 {
		sm.cyclesActive++
		sm.occupancySum += int64(len(sm.warps))
	}
	sm.issued += int64(issued)
	sm.chargedThrough = now + 1
	// Decide when this SM must step again. A policy-gate refusal means a
	// warp retries its acquire every cycle (the retry itself is modelled
	// state: attempt counters and the livelock watchdog), so the SM stays
	// awake; otherwise it can sleep until its next scoreboard or memory
	// event without any observable difference.
	switch {
	case issued > 0 || sm.sawPolicyBlock:
		sm.wakeAt = now + 1
	default:
		if t := sm.nextEvent(now); t >= 0 {
			sm.wakeAt = t
		} else {
			sm.wakeAt = sleepForever
		}
	}
	return issued
}

// issueSlot lets one scheduler pick and issue at most one instruction
// and returns the slot's attribution for this cycle. When nothing
// issues, the charge goes to the first candidate the scheduler tried
// (the warp it most wanted to run) with that warp's first blocking
// hazard; slots with no runnable candidate classify as barrier,
// no-warp, or empty.
func (sm *SM) issueSlot(sched *scheduler, now int64) slotResult {
	rr := sm.dev.Timing.LooseRoundRobin
	if rr {
		sched.last = nil // round-robin: no greedy stickiness
	}
	if sched.last != nil && sched.last.Finished() {
		// A finished warp's slot may already belong to a fresh warp;
		// keeping it greedy would shadow that warp in the pick list.
		sched.last = nil
	}
	last := sched.last
	charged := slotResult{cause: causeInvalid}
	if last != nil {
		out := sm.tryIssue(last, now)
		if out == outIssued {
			return slotResult{cause: CauseIssued, warp: last}
		}
		if c := out.stallCause(); c != causeInvalid {
			charged = slotResult{cause: c, warp: last}
		}
	}
	if sched.candGen != sm.warpGen {
		sched.rebuildCands(sm)
	}
	// Build the pick order: one pass over the mapped warps collecting
	// (priority, rank); the list is already in Seq order, so the common
	// all-equal-priority case needs no sort at all. Priorities cannot
	// change while a scan fails (only successful issues mutate policy
	// state), so a single fetch per warp is exact.
	order := sched.order[:0]
	needSort := false
	for _, w := range sched.cands {
		if w == last || w.finished || w.atBarrier {
			continue
		}
		p := sm.policy.Priority(w)
		rank := w.Seq
		if rr {
			max := sm.dev.Config.MaxWarpsPerSM
			rank = (w.Widx - int(now)%max + max) % max
		}
		if n := len(order); n > 0 {
			if prev := &order[n-1]; p < prev.p || (p == prev.p && rank < prev.rank) {
				needSort = true
			}
		}
		order = append(order, schedCand{w: w, p: p, rank: rank})
	}
	sched.order = order
	if needSort {
		for i := 1; i < len(order); i++ {
			c := order[i]
			j := i - 1
			for j >= 0 && (order[j].p > c.p || (order[j].p == c.p && order[j].rank > c.rank)) {
				order[j+1] = order[j]
				j--
			}
			order[j+1] = c
		}
	}
	for i := range order {
		w := order[i].w
		if w.blockedUntil > now {
			// Scoreboard-blocked until a known future cycle: charge
			// without re-decoding the instruction. The cached bound is
			// conservative (fault injection only delays writebacks), so
			// an expired bound is simply recomputed by tryIssue.
			if charged.cause == causeInvalid {
				charged = slotResult{cause: CauseScoreboard, warp: w}
			}
			continue
		}
		out := sm.tryIssue(w, now)
		if out == outIssued {
			sched.last = w
			return slotResult{cause: CauseIssued, warp: w}
		}
		if charged.cause == causeInvalid {
			if c := out.stallCause(); c != causeInvalid {
				charged = slotResult{cause: c, warp: w}
			}
		}
	}
	if charged.cause != causeInvalid {
		return charged
	}
	return sm.classifyIdleSlot(sched)
}

// classifyIdleSlot attributes a slot that had no blocked candidate:
// the SM is empty, every mapped live warp is parked at a barrier, or no
// live warp maps to the scheduler at all.
func (sm *SM) classifyIdleSlot(sched *scheduler) slotResult {
	if len(sm.warps) == 0 {
		return slotResult{cause: CauseEmpty}
	}
	for _, w := range sched.cands {
		if w.Finished() {
			continue
		}
		if w.atBarrier {
			return slotResult{cause: CauseBarrier, warp: w}
		}
	}
	return slotResult{cause: CauseNoWarp}
}

// tryIssue attempts to issue w's next instruction at cycle now and
// reports the outcome: issued, skipped (not a chargeable stall), or the
// first hazard that blocked the warp. Per-warp stall counters are NOT
// bumped here — the charging site in step charges exactly one warp per
// scheduler slot per cycle.
func (sm *SM) tryIssue(w *Warp, now int64) issueOutcome {
	if w.Finished() || w.atBarrier {
		return outSkip
	}
	pc := w.NextPC()
	if pc < 0 {
		sm.onWarpFinished(w)
		return outSkip
	}
	in := &w.CTA.kern.Instrs[pc]

	if t := w.scoreboardReadyAt(in); t > now {
		w.blockedUntil = t
		return outScoreboard
	}
	// Structural hazards.
	switch isa.ClassOf(in.Op) {
	case isa.ClassSFU:
		if sm.sfuThisCycle >= sm.dev.Timing.SFUPortsPerSM {
			return outSFU
		}
	case isa.ClassMem:
		if in.Op == isa.OpLdGlobal || in.Op == isa.OpStGlobal {
			if sm.memInFlight >= sm.dev.Timing.MaxInFlightMem {
				return outMem
			}
		}
	}
	// Policy gate (acquire/release, OWF locks, RFV allocation).
	if !sm.policy.TryIssue(w, in, now) {
		sm.sawPolicyBlock = true
		return outPolicy
	}

	// Commit: the instruction issues this cycle.
	active := w.activeMask()
	exec := w.guardMask(in, active)
	if in.Op == isa.OpSelp {
		exec = active // guard is a selector, not an execution filter
	}

	switch in.Op {
	case isa.OpBarSync:
		w.advance(in, pc, active, 0)
		sm.arriveBarrier(w)
	case isa.OpExit:
		w.exitLanes(exec)
		w.advance(in, pc, active, 0)
		if w.top() == nil {
			sm.onWarpFinished(w)
		}
	default:
		taken := sm.execute(w, in, pc, exec)
		lat := sm.dev.Timing.latency(in.Op)
		w.markWrite(in, now+lat)
		if isa.HasDst(in.Op) || in.Op == isa.OpSetp || in.Op == isa.OpSetpF {
			sm.wakeups.push(now + lat)
		}
		if in.Op == isa.OpLdGlobal || in.Op == isa.OpStGlobal {
			sm.memInFlight++
			sm.memComplete.push(now + lat)
		}
		if in.Op == isa.OpBra {
			// taken = guard-true lanes; everyone else in the active
			// mask falls through.
			w.advance(in, pc, active, taken)
		} else {
			w.advance(in, pc, active, 0)
		}
		if isa.ClassOf(in.Op) == isa.ClassSFU {
			sm.sfuThisCycle++
		}
	}

	// Register file traffic accounting (warp-row granularity, the unit
	// the energy model charges).
	for si := 0; si < isa.NumSrcs(in.Op); si++ {
		if in.Srcs[si].Kind == isa.OpndReg {
			sm.rfReads++
		}
	}
	if isa.HasDst(in.Op) {
		sm.rfWrites++
	}

	if in.Op == isa.OpAcq || in.Op == isa.OpRel {
		sm.acqRelIssued++
	}
	w.Issued++
	sm.policy.OnIssued(w, in, now)
	if w.top() == nil {
		sm.onWarpFinished(w)
	}
	return outIssued
}

// arriveBarrier parks w until all live warps of its CTA arrive.
func (sm *SM) arriveBarrier(w *Warp) {
	cta := w.CTA
	w.atBarrier = true
	cta.barWaiting++
	if cta.barWaiting >= cta.liveWarps() {
		for _, x := range cta.warps {
			x.atBarrier = false
		}
		cta.barWaiting = 0
	}
}

// onWarpFinished handles warp completion. CTA retirement is deferred to
// the cycle-end barrier (Device.finishCycle) so the dispatcher's global
// state — nextCTA, doneCTAs, the multi-kernel rotation — is only touched
// in fixed SM order, which is what keeps Stats identical at any -par.
func (sm *SM) onWarpFinished(w *Warp) {
	if w.retired {
		return
	}
	w.retired = true
	w.finished = true
	sm.warpsRetired++
	sm.policy.OnWarpExit(w)
	cta := w.CTA
	cta.doneWarps++
	// A warp that exits while others wait at a barrier could strand
	// them; kernels are barrier-uniform, but release defensively.
	if cta.barWaiting >= cta.liveWarps() && cta.liveWarps() > 0 {
		for _, x := range cta.warps {
			if !x.Finished() {
				x.atBarrier = false
			}
		}
		cta.barWaiting = 0
	}
	if cta.doneWarps == len(cta.warps) {
		sm.pendingRetire = append(sm.pendingRetire, cta)
	}
}
