package sim

import (
	"container/heap"
	"fmt"

	"regmutex/internal/isa"
)

// CTAState is one resident CTA on an SM.
type CTAState struct {
	ID     int
	kern   *isa.Kernel
	global []uint64 // the kernel's global memory
	warps  []*Warp
	shared []uint64

	barWaiting int // warps currently parked at the barrier
	doneWarps  int
}

func (c *CTAState) warpBase(w *Warp) int {
	for i, x := range c.warps {
		if x == w {
			return i
		}
	}
	return 0
}

func (c *CTAState) loadShared(addr int64) uint64 {
	if len(c.shared) == 0 {
		return 0
	}
	i := int(addr) % len(c.shared)
	if i < 0 {
		i += len(c.shared)
	}
	return c.shared[i]
}

func (c *CTAState) storeShared(addr int64, v uint64) {
	if len(c.shared) == 0 {
		return
	}
	i := int(addr) % len(c.shared)
	if i < 0 {
		i += len(c.shared)
	}
	c.shared[i] = v
}

// liveWarps returns warps that have not finished.
func (c *CTAState) liveWarps() int { return len(c.warps) - c.doneWarps }

// eventHeap is a min-heap of future completion times, used both for
// idle-cycle skipping and in-flight memory accounting.
type eventHeap []int64

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// scheduler is one of the SM's warp schedulers (greedy-then-oldest).
type scheduler struct {
	id   int
	last *Warp // greedy: keep issuing from the same warp

	// lastRes is the slot's most recent per-cycle attribution; Run
	// multiplies it over cycles the event-driven fast-forward skips.
	lastRes slotResult
}

// slotResult is one scheduler slot's attribution for one cycle: the
// cause charged and the warp it was charged to (nil for slot-level
// causes like no-warp/empty).
type slotResult struct {
	cause StallCause
	warp  *Warp
}

// issueOutcome is why one tryIssue attempt did or did not issue.
type issueOutcome int8

const (
	outIssued     issueOutcome = iota
	outSkip                    // finished / at barrier: not a chargeable stall
	outScoreboard              // pending register or predicate writeback
	outSFU                     // SFU port taken this cycle
	outMem                     // global-memory queue full
	outPolicy                  // policy gate refused (acquire-wait)
)

// stallCause maps a failed attempt to its charged cause. Structural
// back-pressure (memory queue, SFU port) folds into CauseMemory.
func (o issueOutcome) stallCause() StallCause {
	switch o {
	case outScoreboard:
		return CauseScoreboard
	case outSFU, outMem:
		return CauseMemory
	case outPolicy:
		return CauseAcquire
	default:
		return causeInvalid
	}
}

// SM is one streaming multiprocessor.
type SM struct {
	dev *Device
	id  int

	ctas       []*CTAState
	warps      []*Warp // all resident warps (nil entries after completion)
	slots      []bool  // warp slot occupancy, index = Widx
	schedulers []scheduler

	policy PolicyState

	memInFlight  int
	memComplete  eventHeap // completion times of outstanding global requests
	wakeups      eventHeap // scoreboard writeback times (idle skipping)
	sfuThisCycle int

	// Stats.
	issued        int64
	acqRelIssued  int64 // ACQ/REL primitives among issued (differential runs subtract these)
	cyclesActive  int64
	warpsLaunched int64
	occupancySum  int64 // resident warps integrated over active cycles
	rfReads       int64 // register file row reads (warp-wide)
	rfWrites      int64 // register file row writes

	// stalls is the SM's per-cause scheduler-slot attribution: exactly
	// one cause per scheduler per stepped cycle (skipped cycles charged
	// in bulk), so its sum is always cycles × SchedulersPerSM.
	stalls StallBreakdown
}

func newSM(dev *Device, id int) *SM {
	sm := &SM{dev: dev, id: id}
	sm.slots = make([]bool, dev.Config.MaxWarpsPerSM)
	for s := 0; s < dev.Config.SchedulersPerSM; s++ {
		sm.schedulers = append(sm.schedulers, scheduler{id: s})
	}
	return sm
}

// freeSlots returns how many warp slots are unoccupied.
func (sm *SM) freeSlots() int {
	n := 0
	for _, used := range sm.slots {
		if !used {
			n++
		}
	}
	return n
}

// launchCTA places a CTA of the device's (single) kernel onto the SM.
func (sm *SM) launchCTA(id int) {
	sm.launchCTAOf(sm.dev.Kernel, 0, id)
}

// launchCTAOf places a CTA of an arbitrary kernel onto the SM (the
// multi-kernel path; kidx selects its global memory).
func (sm *SM) launchCTAOf(k *isa.Kernel, kidx, id int) {
	if sm.freeSlots() < k.WarpsPerCTA() {
		sm.dev.fail(fmt.Errorf("sim: SM%d: %w for CTA %d of kernel %s (%d free, %d needed)",
			sm.id, ErrNoWarpSlot, id, k.Name, sm.freeSlots(), k.WarpsPerCTA()))
		return
	}
	cta := &CTAState{ID: id, kern: k, global: sm.dev.GlobalOf(kidx)}
	if k.SharedMemWords > 0 {
		cta.shared = make([]uint64, k.SharedMemWords)
	}
	threads := k.ThreadsPerCTA
	for wi := 0; wi < k.WarpsPerCTA(); wi++ {
		lanes := threads - wi*isa.WarpSize
		if lanes > isa.WarpSize {
			lanes = isa.WarpSize
		}
		widx := sm.takeSlot()
		if widx < 0 {
			return
		}
		w := newWarp(k, int(sm.dev.warpSeq), widx, cta, lanes)
		sm.dev.warpSeq++
		cta.warps = append(cta.warps, w)
		sm.warps = append(sm.warps, w)
		sm.warpsLaunched++
	}
	sm.ctas = append(sm.ctas, cta)
	sm.policy.OnCTALaunch(cta)
}

func (sm *SM) takeSlot() int {
	for i, used := range sm.slots {
		if !used {
			sm.slots[i] = true
			return i
		}
	}
	// Residency accounting should prevent this; latch a typed error the
	// device surfaces from Run (or NewDevice) instead of panicking.
	sm.dev.fail(fmt.Errorf("sim: SM%d: %w with %d warps resident", sm.id, ErrNoWarpSlot, len(sm.warps)))
	return -1
}

// retireCTA frees a finished CTA's resources.
func (sm *SM) retireCTA(cta *CTAState) {
	for _, w := range cta.warps {
		sm.slots[w.Widx] = false
	}
	for i, c := range sm.ctas {
		if c == cta {
			sm.ctas = append(sm.ctas[:i], sm.ctas[i+1:]...)
			break
		}
	}
	live := sm.warps[:0]
	for _, w := range sm.warps {
		if w.CTA != cta {
			live = append(live, w)
		}
	}
	sm.warps = live
	sm.policy.OnCTARetire(cta)
}

// residentWarps returns the number of warps currently on the SM.
func (sm *SM) residentWarps() int { return len(sm.warps) }

// drainMemCompletions retires finished global requests.
func (sm *SM) drainMemCompletions(now int64) {
	for len(sm.memComplete) > 0 && sm.memComplete[0] <= now {
		heap.Pop(&sm.memComplete)
		sm.memInFlight--
	}
}

// nextEvent returns the earliest future time anything changes on this SM,
// or -1 if nothing is pending.
func (sm *SM) nextEvent(now int64) int64 {
	next := int64(-1)
	consider := func(t int64) {
		if t > now && (next < 0 || t < next) {
			next = t
		}
	}
	if len(sm.memComplete) > 0 {
		consider(sm.memComplete[0])
	}
	for len(sm.wakeups) > 0 && sm.wakeups[0] <= now {
		heap.Pop(&sm.wakeups)
	}
	if len(sm.wakeups) > 0 {
		consider(sm.wakeups[0])
	}
	return next
}

// step advances the SM by one cycle; returns the number of instructions
// issued. Every scheduler slot is charged to exactly one StallCause per
// step (the per-cycle attribution the observability layer is built on).
func (sm *SM) step(now int64) int {
	sm.drainMemCompletions(now)
	sm.sfuThisCycle = 0
	issued := 0
	obs := sm.dev.obs
	for s := range sm.schedulers {
		sched := &sm.schedulers[s]
		res := sm.issueSlot(sched, now)
		sched.lastRes = res
		sm.stalls[res.cause]++
		if res.warp != nil {
			res.warp.Stalls[res.cause]++
		}
		if res.cause == CauseIssued {
			issued++
		}
		if obs != nil {
			obs.OnStall(StallSlot{Cycle: now, SM: sm.id, Scheduler: sched.id,
				Cause: res.cause, Warp: res.warp})
		}
	}
	if len(sm.warps) > 0 {
		sm.cyclesActive++
		sm.occupancySum += int64(len(sm.warps))
	}
	sm.issued += int64(issued)
	return issued
}

// chargeSkipped replays each slot's last attribution over n cycles the
// device's event-driven fast-forward skipped (nothing steps during a
// skip, so the causes cannot change).
func (sm *SM) chargeSkipped(n int64) {
	for s := range sm.schedulers {
		res := sm.schedulers[s].lastRes
		sm.stalls[res.cause] += n
		if res.warp != nil {
			res.warp.Stalls[res.cause] += n
		}
	}
}

// issueSlot lets one scheduler pick and issue at most one instruction
// and returns the slot's attribution for this cycle. When nothing
// issues, the charge goes to the first candidate the scheduler tried
// (the warp it most wanted to run) with that warp's first blocking
// hazard; slots with no runnable candidate classify as barrier,
// no-warp, or empty.
func (sm *SM) issueSlot(sched *scheduler, now int64) slotResult {
	// Candidate order: greedy (last issued) first, then priority /
	// oldest-first. Walk candidates until one issues. The tried set is
	// a bitmask over warp slots (Nw <= 64).
	var tried uint64
	charged := slotResult{cause: causeInvalid}
	note := func(w *Warp, out issueOutcome) {
		if charged.cause == causeInvalid {
			if c := out.stallCause(); c != causeInvalid {
				charged = slotResult{cause: c, warp: w}
			}
		}
	}
	if sm.dev.Timing.LooseRoundRobin {
		sched.last = nil // round-robin: no greedy stickiness
	}
	if sched.last != nil && sched.last.Finished() {
		// A finished warp's slot may already belong to a fresh warp;
		// keeping it greedy would shadow that warp in the tried mask.
		sched.last = nil
	}
	if sched.last != nil {
		out := sm.tryIssue(sched.last, now)
		if out == outIssued {
			return slotResult{cause: CauseIssued, warp: sched.last}
		}
		note(sched.last, out)
		tried |= 1 << uint(sched.last.Widx)
	}
	for {
		var pick *Warp
		for _, w := range sm.warps {
			if w.Widx%len(sm.schedulers) != sched.id || tried&(1<<uint(w.Widx)) != 0 {
				continue
			}
			if w.Finished() || w.atBarrier {
				continue
			}
			if pick == nil || sm.better(w, pick) {
				pick = w
			}
		}
		if pick == nil {
			break
		}
		tried |= 1 << uint(pick.Widx)
		out := sm.tryIssue(pick, now)
		if out == outIssued {
			sched.last = pick
			return slotResult{cause: CauseIssued, warp: pick}
		}
		note(pick, out)
	}
	if charged.cause != causeInvalid {
		return charged
	}
	return sm.classifyIdleSlot(sched)
}

// classifyIdleSlot attributes a slot that had no blocked candidate:
// the SM is empty, every mapped live warp is parked at a barrier, or no
// live warp maps to the scheduler at all.
func (sm *SM) classifyIdleSlot(sched *scheduler) slotResult {
	if len(sm.warps) == 0 {
		return slotResult{cause: CauseEmpty}
	}
	for _, w := range sm.warps {
		if w.Widx%len(sm.schedulers) != sched.id || w.Finished() {
			continue
		}
		if w.atBarrier {
			return slotResult{cause: CauseBarrier, warp: w}
		}
	}
	return slotResult{cause: CauseNoWarp}
}

// better reports whether a should be scheduled before b (policy priority,
// then age for greedy-then-oldest, or rotation for loose round-robin).
func (sm *SM) better(a, b *Warp) bool {
	pa, pb := sm.policy.Priority(a), sm.policy.Priority(b)
	if pa != pb {
		return pa < pb
	}
	if sm.dev.Timing.LooseRoundRobin {
		rot := int(sm.dev.now) % sm.dev.Config.MaxWarpsPerSM
		ra := (a.Widx - rot + sm.dev.Config.MaxWarpsPerSM) % sm.dev.Config.MaxWarpsPerSM
		rb := (b.Widx - rot + sm.dev.Config.MaxWarpsPerSM) % sm.dev.Config.MaxWarpsPerSM
		return ra < rb
	}
	return a.Seq < b.Seq
}

// tryIssue attempts to issue w's next instruction at cycle now and
// reports the outcome: issued, skipped (not a chargeable stall), or the
// first hazard that blocked the warp. Per-warp stall counters are NOT
// bumped here — the charging site in step charges exactly one warp per
// scheduler slot per cycle.
func (sm *SM) tryIssue(w *Warp, now int64) issueOutcome {
	if w.Finished() || w.atBarrier {
		return outSkip
	}
	pc := w.NextPC()
	if pc < 0 {
		sm.onWarpFinished(w)
		return outSkip
	}
	in := &w.CTA.kern.Instrs[pc]

	if !w.scoreboardReady(in, now) {
		return outScoreboard
	}
	// Structural hazards.
	switch isa.ClassOf(in.Op) {
	case isa.ClassSFU:
		if sm.sfuThisCycle >= sm.dev.Timing.SFUPortsPerSM {
			return outSFU
		}
	case isa.ClassMem:
		if in.Op == isa.OpLdGlobal || in.Op == isa.OpStGlobal {
			if sm.memInFlight >= sm.dev.Timing.MaxInFlightMem {
				return outMem
			}
		}
	}
	// Policy gate (acquire/release, OWF locks, RFV allocation).
	if !sm.policy.TryIssue(w, in, now) {
		return outPolicy
	}

	// Commit: the instruction issues this cycle.
	active := w.activeMask()
	exec := w.guardMask(in, active)
	if in.Op == isa.OpSelp {
		exec = active // guard is a selector, not an execution filter
	}

	switch in.Op {
	case isa.OpBarSync:
		w.advance(in, pc, active, 0)
		sm.arriveBarrier(w)
	case isa.OpExit:
		w.exitLanes(exec)
		w.advance(in, pc, active, 0)
		if w.top() == nil {
			sm.onWarpFinished(w)
		}
	default:
		taken := sm.execute(w, in, pc, exec)
		lat := sm.dev.Timing.latency(in.Op)
		w.markWrite(in, now+lat)
		if isa.HasDst(in.Op) || in.Op == isa.OpSetp || in.Op == isa.OpSetpF {
			heap.Push(&sm.wakeups, now+lat)
		}
		if in.Op == isa.OpLdGlobal || in.Op == isa.OpStGlobal {
			sm.memInFlight++
			heap.Push(&sm.memComplete, now+lat)
		}
		if in.Op == isa.OpBra {
			// taken = guard-true lanes; everyone else in the active
			// mask falls through.
			w.advance(in, pc, active, taken)
		} else {
			w.advance(in, pc, active, 0)
		}
		if isa.ClassOf(in.Op) == isa.ClassSFU {
			sm.sfuThisCycle++
		}
	}

	// Register file traffic accounting (warp-row granularity, the unit
	// the energy model charges).
	for si := 0; si < isa.NumSrcs(in.Op); si++ {
		if in.Srcs[si].Kind == isa.OpndReg {
			sm.rfReads++
		}
	}
	if isa.HasDst(in.Op) {
		sm.rfWrites++
	}

	if in.Op == isa.OpAcq || in.Op == isa.OpRel {
		sm.acqRelIssued++
	}
	w.Issued++
	sm.policy.OnIssued(w, in, now)
	if w.top() == nil {
		sm.onWarpFinished(w)
	}
	return outIssued
}

// arriveBarrier parks w until all live warps of its CTA arrive.
func (sm *SM) arriveBarrier(w *Warp) {
	cta := w.CTA
	w.atBarrier = true
	cta.barWaiting++
	if cta.barWaiting >= cta.liveWarps() {
		for _, x := range cta.warps {
			x.atBarrier = false
		}
		cta.barWaiting = 0
	}
}

// onWarpFinished handles warp completion and CTA retirement.
func (sm *SM) onWarpFinished(w *Warp) {
	if w.retired {
		return
	}
	w.retired = true
	w.finished = true
	sm.dev.warpsRetired++
	sm.policy.OnWarpExit(w)
	cta := w.CTA
	cta.doneWarps++
	// A warp that exits while others wait at a barrier could strand
	// them; kernels are barrier-uniform, but release defensively.
	if cta.barWaiting >= cta.liveWarps() && cta.liveWarps() > 0 {
		for _, x := range cta.warps {
			if !x.Finished() {
				x.atBarrier = false
			}
		}
		cta.barWaiting = 0
	}
	if cta.doneWarps == len(cta.warps) {
		sm.retireCTA(cta)
		sm.dev.onCTAComplete(sm, cta)
	}
}
