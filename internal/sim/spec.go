package sim

import (
	"fmt"

	"regmutex/internal/isa"
	"regmutex/internal/occupancy"
)

// DeviceSpec names the three things every simulation needs: the machine,
// the timing model, and the kernel. Everything else — policy, input
// memory, observers, the auditor — is an Option on New.
type DeviceSpec struct {
	Config occupancy.Config
	Timing Timing
	Kernel *isa.Kernel
}

// buildOptions collects New's optional knobs before construction, so
// observers and auditors are attached before the initial CTA wave (and
// therefore see its cycle-0 launch events — the old post-construction
// Listener field missed them).
type buildOptions struct {
	policy      Policy
	global      []uint64
	observers   []Observer
	audit       AuditHook
	sampleEvery int64
	par         int
}

// Option configures New.
type Option func(*buildOptions)

// WithPolicy selects the register-allocation policy; nil (or omitting
// the option) selects the static baseline.
func WithPolicy(p Policy) Option { return func(b *buildOptions) { b.policy = p } }

// WithGlobal provides the device's global memory contents (the workload
// input). Omitted or nil, a zero-filled heap sized by the kernel's
// GlobalMemWords is allocated.
func WithGlobal(g []uint64) Option { return func(b *buildOptions) { b.global = g } }

// WithObserver attaches an instrumentation observer (see Observer).
// Repeating the option fans out to every observer in attachment order.
func WithObserver(o Observer) Option {
	return func(b *buildOptions) {
		if o != nil {
			b.observers = append(b.observers, o)
		}
	}
}

// WithAudit attaches an invariant auditor (see AuditHook and
// internal/audit); a returned error aborts the run.
func WithAudit(h AuditHook) Option { return func(b *buildOptions) { b.audit = h } }

// WithSampleInterval sets how often (in cycles) utilisation samples are
// delivered to Observer.OnCycleSample (and the legacy Sampler). Zero or
// omitted selects the default of 256.
func WithSampleInterval(n int64) Option { return func(b *buildOptions) { b.sampleEvery = n } }

// WithParallelism sets the worker count for the parallel-across-SMs
// engine (Device.Par): n > 1 steps SMs on min(n, NumSMs) concurrent
// workers between deterministic cycle barriers, 0 (the default) picks
// GOMAXPROCS, and 1 forces the serial engine. Results are byte-identical
// at every value.
func WithParallelism(n int) Option { return func(b *buildOptions) { b.par = n } }

// New builds a device from the spec and options. This is the canonical
// constructor; NewDevice is the deprecated positional shim over it.
func New(spec DeviceSpec, opts ...Option) (*Device, error) {
	var b buildOptions
	for _, opt := range opts {
		opt(&b)
	}
	k := spec.Kernel
	if k == nil {
		return nil, fmt.Errorf("sim: DeviceSpec.Kernel is nil")
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	pol := b.policy
	if pol == nil {
		pol = NewStaticPolicy(spec.Config)
	}
	d := &Device{
		Config: spec.Config,
		Timing: spec.Timing,
		Kernel: k,
		Policy: pol,
		Global: b.global,
		Audit:  b.audit,
		Par:    b.par,
		obs:    MultiObserver(b.observers...),
	}
	if b.sampleEvery > 0 {
		d.SampleInterval = b.sampleEvery
	}
	if d.Global == nil {
		words := k.GlobalMemWords
		if words <= 0 {
			words = 1 << 12
		}
		d.Global = make([]uint64, words)
	}
	ctasPerSM := pol.CTAsPerSM(k)
	if ctasPerSM <= 0 {
		return nil, fmt.Errorf("sim: kernel %s does not fit on %s under policy %s",
			k.Name, spec.Config.Name, pol.Name())
	}
	for i := 0; i < spec.Config.NumSMs; i++ {
		sm := newSM(d, i)
		sm.policy = pol.NewSMState(sm)
		d.sms = append(d.sms, sm)
	}
	// Initial wave: fill every SM up to its residency, round-robin so
	// CTAs spread evenly across SMs.
	for more := true; more; {
		more = false
		for _, sm := range d.sms {
			if d.nextCTA >= k.GridCTAs {
				break
			}
			if len(sm.ctas) < ctasPerSM && sm.freeSlots() >= k.WarpsPerCTA() {
				sm.launchCTA(d.nextCTA)
				d.emit(Event{Cycle: 0, SM: sm.id, Kind: "cta-launch", Data: d.nextCTA})
				d.nextCTA++
				more = true
			}
		}
	}
	if d.fatalErr != nil {
		return nil, d.fatalErr
	}
	return d, nil
}
