package sim

import "regmutex/internal/isa"

// This file is the read-only view the audit and fault-injection layers
// (internal/audit, internal/faults) use to inspect a running machine.
// Everything here is an accessor; nothing mutates simulator state.

// SMs returns the device's streaming multiprocessors.
func (d *Device) SMs() []*SM { return d.sms }

// Now returns the current simulation cycle.
func (d *Device) Now() int64 { return d.now }

// DoneCTAs returns how many CTAs have retired so far.
func (d *Device) DoneCTAs() int { return d.doneCTAs }

// WarpsRetired returns how many warps have completed so far (per-SM
// counters summed; they are per-SM so workers never share a counter).
func (d *Device) WarpsRetired() int64 {
	var n int64
	for _, sm := range d.sms {
		n += sm.warpsRetired
	}
	return n
}

// ID returns the SM's index on the device.
func (sm *SM) ID() int { return sm.id }

// Warps returns the SM's resident warps (finished warps of live CTAs
// included; retired CTAs' warps are removed).
func (sm *SM) Warps() []*Warp { return sm.warps }

// ResidentCTAs returns the SM's currently resident CTAs.
func (sm *SM) ResidentCTAs() []*CTAState { return sm.ctas }

// State returns the SM's per-policy mutable state; the audit layer
// type-asserts the optional self-audit interfaces against it.
func (sm *SM) State() PolicyState { return sm.policy }

// UsedSlots returns how many warp slots are currently occupied.
func (sm *SM) UsedSlots() int { return len(sm.slots) - sm.freeSlots() }

// SlotTaken reports whether warp slot i is occupied.
func (sm *SM) SlotTaken(i int) bool { return i >= 0 && i < len(sm.slots) && sm.slots[i] }

// MemInFlight returns the SM's outstanding global memory requests.
func (sm *SM) MemInFlight() int { return sm.memInFlight }

// Stalls returns the SM's per-cause scheduler-slot attribution so far.
// At every point the audit layer can observe (the top of Run's loop and
// kernel end), its sum equals Now() × SchedulersPerSM exactly.
func (sm *SM) Stalls() StallBreakdown { return sm.stalls }

// Kernel returns the kernel this CTA belongs to.
func (c *CTAState) Kernel() *isa.Kernel { return c.kern }

// Warps returns the CTA's warps.
func (c *CTAState) Warps() []*Warp { return c.warps }

// BarWaiting returns how many of the CTA's warps are parked at the
// current barrier.
func (c *CTAState) BarWaiting() int { return c.barWaiting }

// LiveWarps returns warps of the CTA that have not finished.
func (c *CTAState) LiveWarps() int { return c.liveWarps() }
