package sim

import (
	"math/bits"

	"regmutex/internal/isa"
)

// laneMask is a 32-bit active-thread mask.
type laneMask uint32

const fullMask laneMask = 0xFFFFFFFF

func maskFor(threads int) laneMask {
	if threads >= isa.WarpSize {
		return fullMask
	}
	return laneMask(1)<<uint(threads) - 1
}

// stackEntry is one SIMT reconvergence stack frame.
type stackEntry struct {
	pc   int
	rpc  int // reconvergence PC; -1 = never (bottom frame / exit-joined)
	mask laneMask
}

// Warp is one resident warp: SIMT control state, per-lane register values,
// and scoreboard timing.
type Warp struct {
	// Identity.
	Seq     int // global launch order, for oldest-first scheduling
	Widx    int // warp slot index within the SM (the paper's Widx)
	CTA     *CTAState
	LaneCnt int // live threads (last warp of a CTA may be partial)

	stack []stackEntry
	done  laneMask // lanes that executed EXIT

	// Functional state: per-architected-register, per-lane values.
	regs  [][isa.WarpSize]uint64
	preds [][isa.WarpSize]bool

	// Scoreboard: cycle at which each register's pending write lands.
	regReady  []int64
	predReady []int64

	// Wait states.
	atBarrier bool
	finished  bool
	retired   bool

	// blockedUntil caches the earliest cycle the warp's next instruction
	// clears the scoreboard, set when an issue attempt fails on a pending
	// writeback. It is a conservative lower bound (fault injection only
	// pushes writebacks later), so schedulers may skip the warp without
	// re-decoding until it expires, then recompute.
	blockedUntil int64

	// snapIssued / snapEpoch are the forward-progress watchdog's per-warp
	// snapshot (Issued as of the epoch tagged snapEpoch). Keeping them on
	// the warp replaces the map the watchdog used to allocate per check.
	snapIssued int64
	snapEpoch  uint64

	// Per-warp counters. Stalls is the warp's share of the per-cycle
	// scheduler-slot attribution: a warp is charged only on cycles a
	// scheduler charged its slot to this warp (so per-warp breakdowns
	// sum to the charged slot-cycles, not to the warp's lifetime).
	Issued int64
	Stalls StallBreakdown
}

func newWarp(k *isa.Kernel, seq, widx int, cta *CTAState, lanes int) *Warp {
	w := &Warp{
		Seq:       seq,
		Widx:      widx,
		CTA:       cta,
		LaneCnt:   lanes,
		stack:     []stackEntry{{pc: 0, rpc: -1, mask: maskFor(lanes)}},
		regs:      make([][isa.WarpSize]uint64, k.NumRegs),
		preds:     make([][isa.WarpSize]bool, k.NumPRegs),
		regReady:  make([]int64, k.NumRegs),
		predReady: make([]int64, k.NumPRegs),
	}
	return w
}

// Finished reports whether every lane has exited.
func (w *Warp) Finished() bool { return w.finished }

// top returns the current stack frame after popping reconverged and
// fully-exited frames. Returns nil when the warp has finished.
func (w *Warp) top() *stackEntry {
	for len(w.stack) > 0 {
		t := &w.stack[len(w.stack)-1]
		if t.mask&^w.done == 0 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if t.rpc >= 0 && t.pc == t.rpc {
			// Reconverged: merge into the frame below, which waits at
			// this PC.
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return t
	}
	w.finished = true
	return nil
}

// NextPC returns the warp's next instruction index, or -1 when finished.
func (w *Warp) NextPC() int {
	t := w.top()
	if t == nil {
		return -1
	}
	return t.pc
}

// activeMask returns the lanes that execute at the current frame.
func (w *Warp) activeMask() laneMask {
	t := w.top()
	if t == nil {
		return 0
	}
	return t.mask &^ w.done
}

// guardMask narrows active to the lanes passing the instruction's guard.
func (w *Warp) guardMask(in *isa.Instr, active laneMask) laneMask {
	if in.Guard.Unguarded() {
		return active
	}
	var m laneMask
	p := w.preds[in.Guard.Pred]
	for l := 0; l < isa.WarpSize; l++ {
		if active&(1<<uint(l)) == 0 {
			continue
		}
		if p[l] != in.Guard.Neg {
			m |= 1 << uint(l)
		}
	}
	return m
}

// scoreboardReady reports whether the instruction's source and destination
// registers have no pending writes at the given cycle.
func (w *Warp) scoreboardReady(in *isa.Instr, now int64) bool {
	return w.scoreboardReadyAt(in) <= now
}

// scoreboardReadyAt returns the earliest cycle at which every register
// and predicate the instruction touches has no pending write — the value
// the schedulers cache in blockedUntil to skip re-decoding blocked warps.
func (w *Warp) scoreboardReadyAt(in *isa.Instr) int64 {
	t := int64(0)
	if isa.HasDst(in.Op) && w.regReady[in.Dst] > t {
		t = w.regReady[in.Dst]
	}
	for s := 0; s < isa.NumSrcs(in.Op); s++ {
		if in.Srcs[s].Kind == isa.OpndReg && w.regReady[in.Srcs[s].Reg] > t {
			t = w.regReady[in.Srcs[s].Reg]
		}
	}
	if (in.Op == isa.OpSetp || in.Op == isa.OpSetpF) && w.predReady[in.PDst] > t {
		t = w.predReady[in.PDst]
	}
	if !in.Guard.Unguarded() && w.predReady[in.Guard.Pred] > t {
		t = w.predReady[in.Guard.Pred]
	}
	return t
}

// markWrite records the writeback time of the instruction's destination.
func (w *Warp) markWrite(in *isa.Instr, ready int64) {
	if isa.HasDst(in.Op) {
		w.regReady[in.Dst] = ready
	}
	if in.Op == isa.OpSetp || in.Op == isa.OpSetpF {
		w.predReady[in.PDst] = ready
	}
}

// advance moves control flow past the just-executed instruction.
// For branches, taken holds the lanes that jump.
func (w *Warp) advance(in *isa.Instr, pc int, active, taken laneMask) {
	t := w.top()
	if t == nil {
		return
	}
	switch {
	case in.Op != isa.OpBra:
		t.pc = pc + 1
	case taken == active: // uniform taken
		t.pc = in.Target
	case taken == 0: // uniform not-taken
		t.pc = pc + 1
	default: // divergence
		rpc := in.Reconv
		t.pc = rpc // this frame becomes the reconvergence continuation
		if rpc < 0 {
			// Paths only rejoin at exit: the parent frame dissolves
			// into the two children.
			w.stack = w.stack[:len(w.stack)-1]
		}
		notTaken := active &^ taken
		w.stack = append(w.stack,
			stackEntry{pc: pc + 1, rpc: rpc, mask: notTaken},
			stackEntry{pc: in.Target, rpc: rpc, mask: taken},
		)
	}
}

// exitLanes marks lanes as done.
func (w *Warp) exitLanes(m laneMask) { w.done |= m }

// StackDepth reports the current divergence depth (diagnostics).
func (w *Warp) StackDepth() int { return len(w.stack) }

// AtBarrier reports whether the warp is parked at a CTA barrier.
func (w *Warp) AtBarrier() bool { return w.atBarrier }

// MaxPendingWriteback returns the latest cycle at which any of the warp's
// pending register or predicate writes lands. The audit layer bounds this
// against now + Timing.MaxLatency(): a write scheduled further out than
// the slowest opcode means a lost or corrupted memory response.
func (w *Warp) MaxPendingWriteback() int64 {
	m := int64(0)
	for _, t := range w.regReady {
		if t > m {
			m = t
		}
	}
	for _, t := range w.predReady {
		if t > m {
			m = t
		}
	}
	return m
}

// DelayWriteback pushes every pending scoreboard write to land at the
// given absolute cycle. FAULT INJECTION ONLY (internal/faults): it models
// a memory response delayed past any architectural bound, which must be
// caught by the scoreboard audit or the forward-progress watchdog.
func (w *Warp) DelayWriteback(until int64) {
	for i := range w.regReady {
		w.regReady[i] = until
	}
	for i := range w.predReady {
		w.predReady[i] = until
	}
}

// ActiveLaneCount returns the number of currently active lanes.
func (w *Warp) ActiveLaneCount() int { return bits.OnesCount32(uint32(w.activeMask())) }
