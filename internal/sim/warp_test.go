package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"regmutex/internal/isa"
)

func testWarp(lanes int) *Warp {
	k := &isa.Kernel{NumRegs: 8, NumPRegs: 2}
	return newWarp(k, 0, 0, &CTAState{}, lanes)
}

func TestMaskFor(t *testing.T) {
	if maskFor(32) != fullMask {
		t.Error("full warp mask")
	}
	if maskFor(48) != fullMask {
		t.Error("oversized clamps to full")
	}
	if maskFor(8) != 0xFF {
		t.Errorf("partial mask = %x", maskFor(8))
	}
}

func TestSIMTDivergeAndReconverge(t *testing.T) {
	w := testWarp(32)
	bra := isa.NewInstr(isa.OpBra)
	bra.Target = 10
	bra.Reconv = 20
	bra.Guard = isa.Guard{Pred: 0}

	// Diverge at pc 5: lanes 0..15 taken, 16..31 fall through.
	taken := laneMask(0x0000FFFF)
	w.advance(&bra, 5, fullMask, taken)

	if w.StackDepth() != 3 {
		t.Fatalf("stack depth = %d, want 3 (reconv + 2 arms)", w.StackDepth())
	}
	// Taken path executes first.
	if pc := w.NextPC(); pc != 10 {
		t.Fatalf("NextPC = %d, want taken target 10", pc)
	}
	if got := w.activeMask(); got != taken {
		t.Fatalf("active = %x, want %x", got, taken)
	}
	// March the taken arm to the reconvergence point.
	nop := isa.NewInstr(isa.OpNop)
	for pc := 10; pc < 20; pc++ {
		w.advance(&nop, pc, w.activeMask(), 0)
	}
	// Now the fall-through arm runs.
	if pc := w.NextPC(); pc != 6 {
		t.Fatalf("NextPC = %d, want fall-through 6", pc)
	}
	if got := w.activeMask(); got != ^taken&fullMask {
		t.Fatalf("active = %x, want %x", got, ^taken&fullMask)
	}
	for pc := 6; pc < 20; pc++ {
		w.advance(&nop, pc, w.activeMask(), 0)
	}
	// Both arms done: reconverged with the full mask at pc 20.
	if pc := w.NextPC(); pc != 20 {
		t.Fatalf("NextPC = %d, want reconvergence 20", pc)
	}
	if got := w.activeMask(); got != fullMask {
		t.Fatalf("active after reconvergence = %x", got)
	}
	if w.StackDepth() != 1 {
		t.Errorf("stack depth = %d after reconvergence", w.StackDepth())
	}
}

func TestSIMTUniformBranches(t *testing.T) {
	w := testWarp(32)
	bra := isa.NewInstr(isa.OpBra)
	bra.Target = 42
	bra.Reconv = 50
	// All taken: no divergence entry.
	w.advance(&bra, 5, fullMask, fullMask)
	if w.StackDepth() != 1 || w.NextPC() != 42 {
		t.Errorf("uniform taken: depth %d pc %d", w.StackDepth(), w.NextPC())
	}
	// None taken: fall through.
	w2 := testWarp(32)
	w2.advance(&bra, 5, fullMask, 0)
	if w2.StackDepth() != 1 || w2.NextPC() != 6 {
		t.Errorf("uniform not-taken: depth %d pc %d", w2.StackDepth(), w2.NextPC())
	}
}

func TestSIMTExitLanes(t *testing.T) {
	w := testWarp(32)
	w.exitLanes(0x0000FFFF)
	if w.ActiveLaneCount() != 16 {
		t.Errorf("active lanes = %d, want 16", w.ActiveLaneCount())
	}
	if w.Finished() {
		t.Error("warp must not finish with live lanes")
	}
	w.exitLanes(0xFFFF0000)
	if w.NextPC() != -1 || !w.Finished() {
		t.Error("warp must finish when all lanes exit")
	}
}

func TestSIMTExitInsideDivergence(t *testing.T) {
	w := testWarp(32)
	bra := isa.NewInstr(isa.OpBra)
	bra.Target = 10
	bra.Reconv = 20
	bra.Guard = isa.Guard{Pred: 0}
	taken := laneMask(0x000000FF)
	w.advance(&bra, 5, fullMask, taken)
	// The taken arm exits its lanes entirely.
	w.exitLanes(taken)
	// Control moves straight to the fall-through arm.
	if pc := w.NextPC(); pc != 6 {
		t.Fatalf("NextPC = %d, want 6", pc)
	}
	nop := isa.NewInstr(isa.OpNop)
	for pc := 6; pc < 20; pc++ {
		w.advance(&nop, pc, w.activeMask(), 0)
	}
	if pc := w.NextPC(); pc != 20 {
		t.Fatalf("NextPC = %d, want reconvergence 20", pc)
	}
	if w.ActiveLaneCount() != 24 {
		t.Errorf("active = %d, want 24 (8 exited)", w.ActiveLaneCount())
	}
}

func TestScoreboard(t *testing.T) {
	w := testWarp(32)
	write := isa.NewInstr(isa.OpIAdd)
	write.Dst = 3
	write.Srcs[0] = isa.R(1)
	write.Srcs[1] = isa.Imm(1)

	if !w.scoreboardReady(&write, 0) {
		t.Fatal("fresh warp must be ready")
	}
	w.markWrite(&write, 100) // r3 busy until cycle 100

	readR3 := isa.NewInstr(isa.OpMov)
	readR3.Dst = 4
	readR3.Srcs[0] = isa.R(3)
	if w.scoreboardReady(&readR3, 50) {
		t.Error("RAW hazard not detected")
	}
	if !w.scoreboardReady(&readR3, 100) {
		t.Error("ready at writeback time")
	}
	// WAW on r3 also blocks.
	if w.scoreboardReady(&write, 50) {
		t.Error("WAW hazard not detected")
	}
	// Unrelated registers unaffected.
	other := isa.NewInstr(isa.OpMov)
	other.Dst = 6
	other.Srcs[0] = isa.R(1)
	if !w.scoreboardReady(&other, 50) {
		t.Error("independent instruction blocked")
	}
}

func TestScoreboardPredicates(t *testing.T) {
	w := testWarp(32)
	setp := isa.NewInstr(isa.OpSetp)
	setp.PDst = 1
	setp.Srcs[0] = isa.R(0)
	setp.Srcs[1] = isa.Imm(0)
	w.markWrite(&setp, 40)

	guarded := isa.NewInstr(isa.OpMov)
	guarded.Dst = 2
	guarded.Srcs[0] = isa.Imm(1)
	guarded.Guard = isa.Guard{Pred: 1}
	if w.scoreboardReady(&guarded, 10) {
		t.Error("guard predicate hazard not detected")
	}
	if !w.scoreboardReady(&guarded, 40) {
		t.Error("ready once the predicate lands")
	}
}

func TestGuardMask(t *testing.T) {
	w := testWarp(32)
	for l := 0; l < 32; l++ {
		w.preds[0][l] = l%2 == 0
	}
	in := isa.NewInstr(isa.OpMov)
	in.Dst = 1
	in.Srcs[0] = isa.Imm(1)
	in.Guard = isa.Guard{Pred: 0}
	if got := w.guardMask(&in, fullMask); got != 0x55555555 {
		t.Errorf("guard mask = %x", got)
	}
	in.Guard.Neg = true
	if got := w.guardMask(&in, fullMask); got != 0xAAAAAAAA {
		t.Errorf("negated guard mask = %x", got)
	}
	// Guard interacts with the active mask.
	if got := w.guardMask(&in, 0x0000FFFF); got != 0x0000AAAA {
		t.Errorf("masked guard = %x", got)
	}
}

func TestEventHeap(t *testing.T) {
	var h eventHeap
	in := []int64{50, 10, 30, 20, 40, 10, 5, 70}
	for _, v := range in {
		h.push(v)
	}
	if len(h) != len(in) {
		t.Fatalf("len = %d, want %d", len(h), len(in))
	}
	if h.min() != 5 {
		t.Fatalf("min = %d, want 5", h.min())
	}
	want := append([]int64(nil), in...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, exp := range want {
		if got := h.pop(); got != exp {
			t.Fatalf("pop %d = %d, want %d", i, got, exp)
		}
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %v", h)
	}
}

// Property: advance never loses or duplicates lanes — the union of all
// stack masks (minus exited lanes) equals the original active set.
func TestSIMTLaneConservationProperty(t *testing.T) {
	f := func(takenRaw uint32, exitRaw uint32) bool {
		w := testWarp(32)
		bra := isa.NewInstr(isa.OpBra)
		bra.Target = 10
		bra.Reconv = 20
		bra.Guard = isa.Guard{Pred: 0}
		taken := laneMask(takenRaw)
		w.advance(&bra, 5, fullMask, taken)
		w.exitLanes(laneMask(exitRaw))

		var union laneMask
		for _, e := range w.stack {
			union |= e.mask
		}
		return union&^w.done == fullMask&^w.done
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimingLatencyTable(t *testing.T) {
	tm := DefaultTiming()
	if tm.latency(isa.OpIAdd) != tm.ALULatency {
		t.Error("ALU latency")
	}
	if tm.latency(isa.OpFFma) != tm.FPLatency {
		t.Error("FP latency")
	}
	if tm.latency(isa.OpFSin) != tm.SFULatency {
		t.Error("SFU latency")
	}
	if tm.latency(isa.OpLdGlobal) != tm.GlobalLatency {
		t.Error("global latency")
	}
	if tm.latency(isa.OpLdShared) != tm.SharedLatency {
		t.Error("shared latency")
	}
	if tm.latency(isa.OpLdGlobal) <= tm.latency(isa.OpIAdd) {
		t.Error("memory must dominate ALU for latency hiding to matter")
	}
}
