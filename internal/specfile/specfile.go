// Package specfile is the shared declarative-spec front end: a
// dependency-free YAML-subset/JSON decoder used by every spec-shaped
// file in the tree (internal/workspec workload specs, internal/hypo
// hypothesis specs). A spec file is block mappings and sequences by
// indentation, "- " list items, inline flow lists ([a, b]), quoted or
// bare scalars, and "#" comments; anchors, multi-document streams, and
// multiline strings are deliberately out (see DESIGN.md §13 for the
// grammar). JSON input (first non-space byte '{') decodes through the
// same strict path, so the two forms are interchangeable.
package specfile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ParseError is a syntax-level rejection, addressed by source line.
// Prefix names the spec dialect ("workspec", "hypo") so errors read in
// the consumer's vocabulary.
type ParseError struct {
	Prefix string
	Line   int
	Msg    string
}

func (e *ParseError) Error() string {
	p := e.Prefix
	if p == "" {
		p = "specfile"
	}
	if e.Line > 0 {
		return fmt.Sprintf("%s: line %d: %s", p, e.Line, e.Msg)
	}
	return p + ": " + e.Msg
}

// Decode reads a spec from YAML-subset or JSON bytes (JSON when the
// first non-space byte is '{'), then decodes the tree strictly into
// out — unknown keys are a *ParseError, not a silent skip. prefix
// labels errors ("workspec", "hypo"). Semantic validation stays with
// the caller; Decode only settles syntax and shape.
func Decode(data []byte, prefix string, out any) error {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var tree any
	if len(trimmed) > 0 && trimmed[0] == '{' {
		if err := json.Unmarshal(data, &tree); err != nil {
			return &ParseError{Prefix: prefix, Msg: "bad JSON: " + err.Error()}
		}
	} else {
		var err error
		tree, err = parseYAML(data, prefix)
		if err != nil {
			return err
		}
	}
	canonical, err := json.Marshal(tree)
	if err != nil {
		return &ParseError{Prefix: prefix, Msg: err.Error()}
	}
	dec := json.NewDecoder(bytes.NewReader(canonical))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return &ParseError{Prefix: prefix, Msg: decodeMsg(err)}
	}
	return nil
}

// DecodeFile loads path and decodes it, wrapping errors with the path.
func DecodeFile(path, prefix string, out any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := Decode(data, prefix, out); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// decodeMsg rewrites encoding/json's strict-mode errors into spec
// vocabulary ("unknown field" instead of Go struct talk).
func decodeMsg(err error) string {
	msg := err.Error()
	if strings.Contains(msg, "unknown field") {
		return strings.TrimPrefix(msg, "json: ")
	}
	return "spec shape: " + msg
}

// ---------------------------------------------------------------------
// YAML-subset parser: indentation-structured mappings and sequences
// over scalar leaves, producing a JSON-compatible any-tree.
// ---------------------------------------------------------------------

type yline struct {
	num    int
	indent int
	text   string
}

type yparser struct {
	prefix string
	lines  []yline
	i      int
}

func parseYAML(data []byte, prefix string) (any, error) {
	var lines []yline
	for num, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \r")
		text := stripComment(line)
		trimmed := strings.TrimLeft(text, " ")
		if trimmed == "" {
			continue
		}
		indent := len(text) - len(trimmed)
		if strings.ContainsRune(text[:indent], '\t') || strings.HasPrefix(trimmed, "\t") {
			return nil, &ParseError{Prefix: prefix, Line: num + 1, Msg: "tabs are not allowed in indentation"}
		}
		lines = append(lines, yline{num: num + 1, indent: indent, text: trimmed})
	}
	if len(lines) == 0 {
		return nil, &ParseError{Prefix: prefix, Msg: "empty spec"}
	}
	p := &yparser{prefix: prefix, lines: lines}
	node, err := p.parseNode(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.i < len(p.lines) {
		l := p.lines[p.i]
		return nil, p.errf(l.num, "unexpected de-indented content %q", l.text)
	}
	return node, nil
}

func (p *yparser) errf(line int, format string, args ...any) *ParseError {
	return &ParseError{Prefix: p.prefix, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// stripComment removes a trailing "#" comment that is not inside a
// quoted string (a "#" must be at line start or preceded by a space to
// count, matching YAML's rule).
func stripComment(line string) string {
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || line[i-1] == ' '):
			return line[:i]
		}
	}
	return line
}

func (p *yparser) parseNode(indent int) (any, error) {
	l := p.lines[p.i]
	if l.indent != indent {
		return nil, p.errf(l.num, "bad indentation (got %d, want %d)", l.indent, indent)
	}
	if isItem(l.text) {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func isItem(text string) bool { return text == "-" || strings.HasPrefix(text, "- ") }

func (p *yparser) parseSequence(indent int) (any, error) {
	var out []any
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent != indent || !isItem(l.text) {
			break
		}
		rest := strings.TrimLeft(strings.TrimPrefix(l.text, "-"), " ")
		if rest == "" {
			// "-" alone: the item is the nested block on following lines.
			p.i++
			if p.i >= len(p.lines) || p.lines[p.i].indent <= indent {
				return nil, p.errf(l.num, "empty sequence item")
			}
			v, err := p.parseNode(p.lines[p.i].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		// "- key: v" starts an inline mapping (or scalar) whose entries
		// continue on following lines indented past the dash.
		inner := indent + (len(l.text) - len(rest))
		if keyOf(rest) != "" {
			p.lines[p.i] = yline{num: l.num, indent: inner, text: rest}
			v, err := p.parseMapping(inner)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			continue
		}
		p.i++
		v, err := p.parseScalar(rest, l.num)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// keyOf returns the mapping key when text is a "key:" or "key: value"
// entry with a bare (unquoted, bracket-free) key, else "".
func keyOf(text string) string {
	idx := strings.Index(text, ":")
	if idx <= 0 {
		return ""
	}
	if idx+1 < len(text) && text[idx+1] != ' ' {
		return "" // "a:b" is a scalar, not an entry
	}
	key := strings.TrimSpace(text[:idx])
	if key == "" || strings.ContainsAny(key, "'\"[]{}#") {
		return ""
	}
	return key
}

func (p *yparser) parseMapping(indent int) (any, error) {
	out := map[string]any{}
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, p.errf(l.num, "unexpected indentation under mapping (got %d, want %d)", l.indent, indent)
		}
		if isItem(l.text) {
			break
		}
		key := keyOf(l.text)
		if key == "" {
			return nil, p.errf(l.num, "expected \"key: value\", got %q", l.text)
		}
		if _, dup := out[key]; dup {
			return nil, p.errf(l.num, "duplicate key %q", key)
		}
		after := strings.TrimSpace(l.text[strings.Index(l.text, ":")+1:])
		p.i++
		if after != "" {
			v, err := p.parseScalar(after, l.num)
			if err != nil {
				return nil, err
			}
			out[key] = v
			continue
		}
		// Bare "key:": the value is the nested block — deeper-indented
		// lines, or a sequence whose dashes sit at the key's own indent.
		if p.i < len(p.lines) && (p.lines[p.i].indent > indent ||
			(p.lines[p.i].indent == indent && isItem(p.lines[p.i].text))) {
			v, err := p.parseNode(p.lines[p.i].indent)
			if err != nil {
				return nil, err
			}
			out[key] = v
			continue
		}
		out[key] = nil
	}
	return out, nil
}

func (p *yparser) parseScalar(s string, line int) (any, error) {
	switch {
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, p.errf(line, "unterminated flow list %q", s)
		}
		body := strings.TrimSpace(s[1 : len(s)-1])
		if body == "" {
			return []any{}, nil
		}
		var out []any
		for _, part := range strings.Split(body, ",") {
			v, err := p.parseScalar(strings.TrimSpace(part), line)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case strings.HasPrefix(s, `"`):
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, p.errf(line, "bad quoted string %s", s)
		}
		return v, nil
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, p.errf(line, "bad quoted string %s", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s == "null" || s == "~":
		return nil, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
