package specfile

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

type toy struct {
	Name  string   `json:"name"`
	N     int      `json:"n"`
	Flags []string `json:"flags,omitempty"`
	Sub   []item   `json:"sub,omitempty"`
}

type item struct {
	Key string  `json:"key"`
	W   float64 `json:"w,omitempty"`
}

func TestDecodeYAMLAndJSONAgree(t *testing.T) {
	yaml := `
# a toy spec
name: demo      # trailing comment
n: 7
flags: [a, "b c", 'd']
sub:
  - key: x
    w: 1.5
  - key: y
`
	jsonForm := `{"name":"demo","n":7,"flags":["a","b c","d"],"sub":[{"key":"x","w":1.5},{"key":"y"}]}`
	var fromYAML, fromJSON toy
	if err := Decode([]byte(yaml), "toy", &fromYAML); err != nil {
		t.Fatal(err)
	}
	if err := Decode([]byte(jsonForm), "toy", &fromJSON); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromYAML, fromJSON) {
		t.Fatalf("YAML and JSON forms disagree:\n yaml %+v\n json %+v", fromYAML, fromJSON)
	}
	want := toy{Name: "demo", N: 7, Flags: []string{"a", "b c", "d"},
		Sub: []item{{Key: "x", W: 1.5}, {Key: "y"}}}
	if !reflect.DeepEqual(fromYAML, want) {
		t.Fatalf("decoded %+v, want %+v", fromYAML, want)
	}
}

// TestDecodeErrors pins the typed-error contract: every rejection is a
// *ParseError carrying the caller's prefix, with a source line when the
// problem is addressable.
func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
		wantLine       bool
	}{
		{"empty", "  \n# only a comment\n", "empty spec", false},
		{"tabs", "name: x\n\tn: 1\n", "tabs", true},
		{"unknown field", "name: x\nn: 1\nturbo: 9\n", "unknown field", false},
		{"duplicate key", "name: x\nname: y\n", "duplicate key", true},
		{"unterminated flow list", "name: x\nflags: [a, b\n", "unterminated flow list", true},
		{"bad json", "{not json", "bad JSON", false},
		{"scalar at top", "name: x\njust a scalar\n", "key: value", true},
		{"shape mismatch", "name: x\nn: [1, 2]\n", "spec shape", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out toy
			err := Decode([]byte(tc.in), "toy", &out)
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *ParseError", err)
			}
			if pe.Prefix != "toy" || !strings.HasPrefix(pe.Error(), "toy: ") {
				t.Fatalf("prefix not carried: %q", pe.Error())
			}
			if !strings.Contains(pe.Msg, tc.want) {
				t.Fatalf("msg %q does not mention %q", pe.Msg, tc.want)
			}
			if tc.wantLine && pe.Line <= 0 {
				t.Fatalf("expected a source line, got %+v", pe)
			}
		})
	}
}

func TestDecodeFileWrapsPath(t *testing.T) {
	var out toy
	err := DecodeFile("/nonexistent/spec.yaml", "toy", &out)
	if err == nil {
		t.Fatal("want error for missing file")
	}
}
