package workloads

import "regmutex/internal/isa"

// The Figure 7 set: eight applications whose theoretical occupancy is
// limited by register demand on the full-size register file (section
// IV-A). CTA shapes are calibrated so the |Es| heuristic reproduces the
// Table I base-set sizes on the GTX480 model.
//
// Loop shape shared by the kernels (mirroring the Figure 1 profiles):
// each iteration spends most of its time in a *base phase* — independent
// plus dependent global loads and app-flavoured ALU/SFU work on base-set
// registers — and then bursts through a short *peak phase* where a tile
// of intermediates materialises in the upper registers and is reduced
// away. The peak is what forces the kernel's high register demand, while
// the base phase carries the memory latency that extra warps hide.
//
// Common register roles:
//
//	r0  tid          r1 ctaid       r2 gid / stream address
//	r3  accumulator  r4 loop count  r5 (+app scratch) base-phase values
//	[pinned]         long-lived parameter state, live to the end
//	[peak]           the short-lived tile of Figure 1's peaks
const (
	memMask   = 1<<15 - 1 // load region word-space (power of two)
	storeBase = 1 << 16   // per-thread results land here, clear of all loads
	memWords  = storeBase + memMask + 1
)

func prologue(b *isa.Builder, threads int) {
	b.MovSpecial(0, isa.SpecTID)
	b.MovSpecial(1, isa.SpecCTAID)
	b.IMad(2, isa.R(1), isa.Imm(int64(threads)), isa.R(0)) // gid
	b.And(2, isa.R(2), isa.Imm(memMask))
}

// loopFooter advances the stream address, decrements, and branches back.
func loopFooter(b *isa.Builder, threads, stride int) {
	b.IAdd(2, isa.R(2), isa.Imm(int64(threads*stride)))
	b.And(2, isa.R(2), isa.Imm(memMask))
	b.ISub(4, isa.R(4), isa.Imm(1))
	b.Setp(0, isa.CmpGT, isa.R(4), isa.Imm(0))
	b.BraIf(0, "top")
}

// dependentLoad emits the a[b[i]] pattern: reload through the just-loaded
// value, masked into the load region. The chained latency is what makes
// these kernels occupancy-hungry.
func dependentLoad(b *isa.Builder, reg isa.Reg) {
	b.And(reg, isa.R(reg), isa.Imm(memMask))
	b.LdGlobal(reg, isa.R(reg), 0)
}

func init() {
	register(bfs())
	register(cutcp())
	register(dwt2d())
	register(hotspot3d())
	register(mriq())
	register(particlefilter())
	register(radixsort())
	register(sad())
}

// bfs models the Parboil breadth-first search: a frontier sweep with a
// data-dependent visit test (heavy divergence), an indirect neighbour
// gather, and almost no arithmetic — the most latency-bound kernel of the
// set and the paper's biggest winner (23% cycle reduction).
func bfs() *Workload {
	const threads = 512
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("bfs", 21, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 7, 13, 3) // r7..r13: graph metadata
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(12))
		b.Label("top")
		b.LdGlobal(5, isa.R(2), 0) // frontier flag
		b.And(6, isa.R(5), isa.Imm(1))
		b.Setp(0, isa.CmpEQ, isa.R(6), isa.Imm(0))
		b.BraIf(0, "skip")
		// Visited: two-level indirect neighbour gather (row pointer,
		// then edge record), then the register peak.
		b.Mov(6, isa.R(5))
		dependentLoad(b, 6)
		dependentLoad(b, 6)
		expandPeak(b, 6, 14, 7, 3, iaddOp(b)) // r14..r20
		b.Label("skip")
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(90, scale)
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "bfs", PaperRegs: 21, PaperBs: 18, RegisterLimited: true,
		Build: build, Input: defaultInput,
	}
}

// cutcp models Parboil's cutoff Coulombic potential: a gathered atom
// record, SFU distance math (sqrt + reciprocal), and a 9-register
// intermediate tile.
func cutcp() *Workload {
	const threads = 256
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("cutcp", 25, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 6, 15, 3) // r6..r15: lattice params
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(10))
		b.Label("top")
		b.LdGlobal(5, isa.R(2), 0) // atom bin
		dependentLoad(b, 5)        // atom index
		dependentLoad(b, 5)        // atom record
		b.I2F(5, isa.R(5))
		b.FSqrt(5, isa.R(5)) // distance
		b.FRcp(5, isa.R(5))  // 1/r
		// Per-atom polynomial of the cutoff kernel (FFMA-heavy, two
		// interleaved accumulator chains).
		for i := 0; i < 12; i++ {
			b.FFma(5, isa.R(5), isa.FImm(0.98), isa.FImm(0.01))
			b.IMad(3, isa.R(3), isa.Imm(1), isa.Imm(3))
		}
		b.F2I(5, isa.R(5))
		expandPeak(b, 5, 16, 9, 3, iaddOp(b)) // r16..r24
		loopFooter(b, threads, 2)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(180, scale)
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "cutcp", PaperRegs: 25, PaperBs: 20, RegisterLimited: true,
		Build: build, Input: defaultInput,
	}
}

// dwt2d models Rodinia's 2-D discrete wavelet transform: the widest
// register tile of Table I (44 registers), a shared-memory staging buffer
// with a CTA barrier per row, and — because its extended set is held
// across an in-peak coefficient load — visible SRP contention, one of the
// applications the paper calls out for acquire pressure.
func dwt2d() *Workload {
	const threads = 256
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("dwt2d", 44, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 6, 25, 3) // r6..r25: filter banks
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(8))
		b.Label("top")
		b.LdGlobal(5, isa.R(2), 0)
		// Peak: a filter coefficient lands directly in the top register
		// while the 17-wide tile materialises, so the extended set is
		// held across part of the load latency.
		b.LdGlobal(43, isa.R(2), 7)
		expandPeak(b, 5, 26, 17, 3, iaddOp(b)) // r26..r42
		b.IAdd(3, isa.R(3), isa.R(43))
		// Stage and synchronise the row.
		b.StShared(isa.R(0), 0, isa.R(3))
		b.Bar()
		b.LdShared(5, isa.R(0), 0)
		b.IAdd(3, isa.R(3), isa.R(5))
		loopFooter(b, threads, 2)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(90, scale)
		k.SharedMemWords = 1800
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "dwt2d", PaperRegs: 44, PaperBs: 38, RegisterLimited: true,
		Build: build, Input: defaultInput,
	}
}

// hotspot3d models Rodinia's 3-D thermal stencil: neighbour-plane loads
// and a 14-register intermediate tile per cell.
func hotspot3d() *Workload {
	const threads = 320
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("hotspot3d", 32, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 6, 17, 3) // r6..r17: conductivities
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(10))
		b.Label("top")
		b.LdGlobal(5, isa.R(2), 0)             // centre plane
		dependentLoad(b, 5)                    // y-neighbour through the index plane
		dependentLoad(b, 5)                    // z-neighbour
		expandPeak(b, 5, 18, 14, 3, iaddOp(b)) // r18..r31
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(180, scale)
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "hotspot3d", PaperRegs: 32, PaperBs: 24, RegisterLimited: true,
		Build: build, Input: defaultInput,
	}
}

// mriq models Parboil's MRI Q-matrix computation: SFU work (sin and cos
// per sample) between the gathers and an 8-register tile.
func mriq() *Workload {
	const threads = 512
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("mriq", 21, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 6, 11, 3) // r6..r11: kVals
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(10))
		b.Label("top")
		b.LdGlobal(5, isa.R(2), 0) // sample index
		dependentLoad(b, 5)        // phi sample
		b.FSin(12, isa.R(5))
		b.FCos(12, isa.R(12))
		b.F2I(12, isa.R(12))
		b.IAdd(12, isa.R(12), isa.R(5))
		// Q-matrix accumulation (independent integer chain).
		for i := 0; i < 8; i++ {
			b.IMad(3, isa.R(3), isa.Imm(1), isa.Imm(5))
		}
		expandPeak(b, 12, 13, 8, 3, iaddOp(b)) // r13..r20
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(90, scale)
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "mriq", PaperRegs: 21, PaperBs: 18, RegisterLimited: true,
		Build: build, Input: defaultInput,
	}
}

// particlefilter models Rodinia's particle filter: a divergent resampling
// test guarding an indirect gather, with exp/log likelihood math executed
// while the 14-register particle tile is live — holding the large
// |Es| = 12 extended set long enough to contend for its few SRP sections,
// as the paper observes.
func particlefilter() *Workload {
	const threads = 256
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("particlefilter", 32, 2, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 6, 17, 3) // r6..r17: model state
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(10))
		b.Label("top")
		b.LdGlobal(5, isa.R(2), 0) // u ~ random (float)
		b.SetpF(1, isa.CmpLT, isa.R(5), isa.FImm(110.0))
		b.BraIfNot(1, "skip")
		// Gather the weight, materialise the particle tile, then
		// evaluate the exp/log likelihood while the tile is live — the
		// extended set is held across the SFU chain, which is what
		// contends for the few SRP sections |Es| = 12 leaves.
		b.F2I(5, isa.R(5))
		dependentLoad(b, 5)
		for i := 0; i < 14; i++ {
			b.IAdd(isa.Reg(18+i), isa.R(5), isa.Imm(int64(i*13+5)))
		}
		b.I2F(5, isa.R(5))
		b.FLog(5, isa.R(5))
		b.FExp(5, isa.R(5))
		b.F2I(5, isa.R(5))
		b.IAdd(3, isa.R(3), isa.R(5))
		for i := 0; i < 14; i++ {
			b.IAdd(3, isa.R(3), isa.R(isa.Reg(18+i)))
		}
		b.Label("skip")
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(180, scale)
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "particlefilter", PaperRegs: 32, PaperBs: 20, RegisterLimited: true,
		Build: build, Input: floatInput(0, 200),
	}
}

// radixsort models the CUDA SDK radix sort pass: digit extraction, a
// shared-memory key exchange, and CTA barriers each round. The barrier
// keeps a large live set, which is what pins |Bs| high (the
// deadlock-avoidance rule of section III-A2).
func radixsort() *Workload {
	const threads = 256
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("radixsort", 33, 1, threads)
		prologue(b, threads)
		// Large pinned set (r5..r26): the per-round digit state that
		// stays live across the barriers.
		fold := pinLongLived(b, 0, 5, 26, 3)
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(8))
		b.Label("top")
		b.LdGlobal(27, isa.R(2), 0) // key pointer
		dependentLoad(b, 27)        // key
		b.Shr(28, isa.R(27), isa.Imm(4))
		b.And(28, isa.R(28), isa.Imm(int64(threads-1))) // digit-derived slot
		// Publish the key, then read a peer's key after the barrier.
		// Every slot has exactly one writer (tid), so the exchange is
		// deterministic under any warp schedule.
		b.StShared(isa.R(0), 0, isa.R(27))
		b.Bar()
		b.LdShared(29, isa.R(28), 0)
		b.IAdd(30, isa.R(29), isa.R(27))
		b.Shl(31, isa.R(30), isa.Imm(1))
		b.IMax(32, isa.R(31), isa.R(29))
		b.IAdd(3, isa.R(3), isa.R(32))
		b.Bar()
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(180, scale)
		k.SharedMemWords = threads
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "radixsort", PaperRegs: 33, PaperBs: 30, RegisterLimited: true,
		Build: build, Input: defaultInput,
	}
}

// sad models Parboil's sum-of-absolute-differences: reference and current
// macroblock rows expand into a 16-register tile. Its |Es| = 12 leaves
// very few SRP sections (5 on the baseline), which is the paper's
// explanation for SAD's muted gains despite a full occupancy boost.
func sad() *Workload {
	const threads = 256
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("sad", 30, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 6, 13, 3) // r6..r13: search window
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(10))
		b.Label("top")
		b.LdGlobal(5, isa.R(2), 0) // reference row base
		dependentLoad(b, 5)        // reference pixels
		for i := 0; i < 16; i++ {
			b.IAdd(isa.Reg(14+i), isa.R(5), isa.Imm(int64(i*7+1)))
		}
		// |ref - cur| reduction over the tile: a serial chain, so the
		// extended set stays held for the whole macroblock comparison.
		b.ISub(14, isa.R(14), isa.R(29))
		b.IAbs(14, isa.R(14))
		for i := 1; i < 16; i++ {
			b.ISub(14, isa.R(14), isa.R(isa.Reg(14+i)))
			b.IAbs(14, isa.R(14))
		}
		b.IMin(3, isa.R(3), isa.R(14))
		b.IAdd(3, isa.R(3), isa.Imm(1))
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(180, scale)
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "sad", PaperRegs: 30, PaperBs: 20, RegisterLimited: true,
		Build: build, Input: defaultInput,
	}
}
