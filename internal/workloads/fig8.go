package workloads

import "regmutex/internal/isa"

// The Figure 8 set: eight applications whose occupancy is NOT limited by
// registers on the full-size register file (so RegMutex leaves them
// untouched there), but becomes register-limited when the file is halved
// to 64 KB (section IV-B). CTA shapes are calibrated against the halved
// GTX480 model. Their SRPs are small on the halved file, so the peak
// phases stay short pure-ALU bursts.

func init() {
	register(gaussian())
	register(heartwall())
	register(lavamd())
	register(mergesort())
	register(montecarlo())
	register(spmv())
	register(srad())
	register(tpacf())
}

// gaussian models Rodinia's Gaussian elimination row kernel: small
// register budget, a row gather and multiply-subtract tile.
func gaussian() *Workload {
	const threads = 256
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("gaussian", 12, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 5, 6, 3) // r5..r6: pivot row state
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(12))
		b.Label("top")
		b.LdGlobal(7, isa.R(2), 0)
		dependentLoad(b, 7)
		expandPeak(b, 7, 8, 4, 3, iaddOp(b)) // r8..r11
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(120, scale)
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "gaussian", PaperRegs: 12, PaperBs: 8,
		Build: build, Input: defaultInput,
	}
}

// heartwall models Rodinia's heart wall tracker: template correlation
// over a shared-memory tile with per-row barriers.
func heartwall() *Workload {
	const threads = 192
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("heartwall", 28, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 6, 17, 3) // r6..r17: template state
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(10))
		b.Label("top")
		b.LdGlobal(5, isa.R(2), 0)
		dependentLoad(b, 5)
		expandPeak(b, 5, 18, 10, 3, iaddOp(b)) // r18..r27
		b.StShared(isa.R(0), 0, isa.R(3))
		b.Bar()
		b.LdShared(5, isa.R(0), 0)
		b.IAdd(3, isa.R(3), isa.R(5))
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(60, scale)
		k.SharedMemWords = 1536
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "heartwall", PaperRegs: 28, PaperBs: 20,
		Build: build, Input: defaultInput,
	}
}

// lavamd models Rodinia's molecular dynamics kernel: per-particle force
// accumulation over neighbour boxes with SFU distance math. Small CTAs
// (64 threads) as in the original code.
func lavamd() *Workload {
	const threads = 64
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("lavamd", 37, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 6, 25, 3) // r6..r25: box parameters
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(12))
		b.Label("top")
		b.LdGlobal(5, isa.R(2), 0)
		dependentLoad(b, 5)
		b.I2F(5, isa.R(5))
		b.FSqrt(5, isa.R(5))
		b.F2I(5, isa.R(5))
		expandPeak(b, 5, 26, 11, 3, iaddOp(b)) // r26..r36
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(240, scale)
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "lavamd", PaperRegs: 37, PaperBs: 28,
		Build: build, Input: defaultInput,
	}
}

// mergesort models the CUDA SDK merge sort's shared-memory merge step.
// Table I's one slowdown case: shared memory binds its occupancy before
// registers do, so the heuristic's split cannot raise residency and
// RegMutex only adds acquire/release instruction overhead.
func mergesort() *Workload {
	const threads = 512
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("mergesort", 15, 1, threads)
		prologue(b, threads)
		// r5..r11: run bounds, kept live across the barrier so the
		// deadlock-avoidance rule pins |Bs| >= 11.
		fold := pinLongLived(b, 0, 5, 11, 3)
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(12))
		b.Label("top")
		b.LdGlobal(12, isa.R(2), 0)
		b.LdGlobal(13, isa.R(2), 31)
		// Binary-search rank computation of the merge step.
		for i := 0; i < 6; i++ {
			b.Shr(13, isa.R(12), isa.Imm(1))
			b.IAdd(12, isa.R(13), isa.Imm(int64(i+1)))
			b.IMad(3, isa.R(3), isa.Imm(1), isa.Imm(2))
		}
		// The merge distance spills into the lone extended register.
		b.ISub(14, isa.R(12), isa.R(13))
		b.IAbs(14, isa.R(14))
		b.IAdd(3, isa.R(3), isa.R(14))
		b.StShared(isa.R(0), 0, isa.R(3))
		b.Bar()
		b.LdShared(12, isa.R(0), 0)
		// Second run's rank lands in the extended register too.
		b.ISub(14, isa.R(12), isa.R(3))
		b.IAbs(14, isa.R(14))
		b.IAdd(3, isa.R(3), isa.R(14))
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(60, scale)
		k.SharedMemWords = 2048
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "mergesort", PaperRegs: 15, PaperBs: 12,
		Build: build, Input: defaultInput,
	}
}

// montecarlo models the CUDA SDK Monte Carlo option pricer: exp/log path
// evaluation with a small register budget.
func montecarlo() *Workload {
	const threads = 320
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("montecarlo", 13, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 5, 8, 3) // r5..r8: option params
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(12))
		b.Label("top")
		b.LdGlobal(9, isa.R(2), 0)
		dependentLoad(b, 9)
		b.I2F(10, isa.R(9))
		b.FLog(10, isa.R(10))
		b.FExp(11, isa.R(10))
		b.FAdd(11, isa.R(11), isa.R(10))
		b.F2I(12, isa.R(11)) // r12 is the lone extended register
		b.IAdd(3, isa.R(3), isa.R(12))
		b.IAdd(3, isa.R(3), isa.R(9))
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(90, scale)
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "montecarlo", PaperRegs: 13, PaperBs: 12,
		Build: build, Input: defaultInput,
	}
}

// spmv models Parboil's sparse matrix-vector multiply: indirect gathers
// (column index, then the vector element) — latency-bound with dependent
// loads.
func spmv() *Workload {
	const threads = 320
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("spmv", 16, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 5, 9, 3) // r5..r9: row pointers
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(12))
		b.Label("top")
		b.LdGlobal(10, isa.R(2), 0) // column index
		dependentLoad(b, 10)        // x[col]
		b.IMul(11, isa.R(10), isa.Imm(7))
		// CSR row scaling.
		for i := 0; i < 8; i++ {
			b.Shr(11, isa.R(11), isa.Imm(1))
			b.IAdd(11, isa.R(11), isa.R(10))
		}
		expandPeak(b, 11, 12, 4, 3, iaddOp(b)) // r12..r15
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(90, scale)
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "spmv", PaperRegs: 16, PaperBs: 12,
		Build: build, Input: defaultInput,
	}
}

// srad models Rodinia's speckle-reducing anisotropic diffusion: a stencil
// gather feeding an 8-register derivative tile.
func srad() *Workload {
	const threads = 256
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("srad", 18, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 5, 8, 3) // r5..r8: diffusion coeffs
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(12))
		b.Label("top")
		b.LdGlobal(9, isa.R(2), 0)
		dependentLoad(b, 9)
		// Diffusion coefficient arithmetic on the gathered value.
		for i := 0; i < 9; i++ {
			b.IMad(9, isa.R(9), isa.Imm(3), isa.Imm(1))
			b.Shr(9, isa.R(9), isa.Imm(1))
		}
		expandPeak(b, 9, 10, 8, 3, iaddOp(b)) // r10..r17
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(90, scale)
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "srad", PaperRegs: 18, PaperBs: 12,
		Build: build, Input: defaultInput,
	}
}

// tpacf models Parboil's two-point angular correlation function:
// histogram binning with sqrt/log distance math over a shared staging
// tile (no barrier in the hot loop, unlike heartwall).
func tpacf() *Workload {
	const threads = 192
	build := func(scale int) *isa.Kernel {
		b := isa.NewBuilder("tpacf", 28, 1, threads)
		prologue(b, threads)
		fold := pinLongLived(b, 0, 6, 17, 3) // r6..r17: bin boundaries
		b.Mov(3, isa.Imm(0))
		b.And(4, isa.R(1), isa.Imm(7)) // CTA-dependent load imbalance
		b.IAdd(4, isa.R(4), isa.Imm(10))
		b.Label("top")
		b.LdGlobal(5, isa.R(2), 0)
		dependentLoad(b, 5)
		b.I2F(5, isa.R(5))
		b.FSqrt(5, isa.R(5))
		b.FLog(5, isa.R(5))
		b.F2I(5, isa.R(5))
		expandPeak(b, 5, 18, 10, 3, iaddOp(b)) // r18..r27
		b.StShared(isa.R(0), 0, isa.R(3))
		loopFooter(b, threads, 1)
		fold()
		// Results land at the thread's global id, recomputed from the
		// launch coordinates (which therefore stay live for the whole
		// kernel, like real output pointers).
		b.IMad(5, isa.R(1), isa.Imm(int64(threads)), isa.R(0))
		b.StGlobal(isa.R(5), storeBase, isa.R(3))
		b.Exit()
		k := b.MustKernel()
		k.GridCTAs = scaled(60, scale)
		k.SharedMemWords = 1536
		k.GlobalMemWords = memWords
		return k
	}
	return &Workload{
		Name: "tpacf", PaperRegs: 28, PaperBs: 20,
		Build: build, Input: defaultInput,
	}
}
