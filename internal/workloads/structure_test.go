package workloads

import (
	"testing"

	"regmutex/internal/cfg"
	"regmutex/internal/isa"
	"regmutex/internal/liveness"
)

// opCount tallies opcode classes in a kernel.
func opCount(k *isa.Kernel) map[isa.Class]int {
	m := map[isa.Class]int{}
	for i := range k.Instrs {
		m[isa.ClassOf(k.Instrs[i].Op)]++
	}
	return m
}

func hasOp(k *isa.Kernel, op isa.Opcode) bool {
	for i := range k.Instrs {
		if k.Instrs[i].Op == op {
			return true
		}
	}
	return false
}

// hasDivergentBranch reports whether the kernel has a guarded branch
// other than its loop back edges (i.e. genuine control divergence).
func hasDivergentBranch(k *isa.Kernel) bool {
	for i := range k.Instrs {
		in := &k.Instrs[i]
		if in.Op == isa.OpBra && !in.Guard.Unguarded() && in.Target > i {
			return true // forward guarded branch = if/else shape
		}
	}
	return false
}

// TestKernelCharacters checks each synthetic kernel keeps the defining
// character of the application it stands in for — the properties DESIGN.md
// claims the substitution preserves.
func TestKernelCharacters(t *testing.T) {
	cases := []struct {
		name      string
		divergent bool // data-dependent forward branch
		barrier   bool // CTA-wide synchronisation
		sfu       bool // transcendental unit usage
		sharedMem bool
		minMemOps int // global memory instructions (latency pressure)
	}{
		{"bfs", true, false, false, false, 2},
		{"cutcp", false, false, true, false, 2},
		{"dwt2d", false, true, false, true, 2},
		{"hotspot3d", false, false, false, false, 3},
		{"mriq", false, false, true, false, 2},
		{"particlefilter", true, false, true, false, 2},
		{"radixsort", false, true, false, true, 2},
		{"sad", false, false, false, false, 2},
		{"gaussian", false, false, false, false, 2},
		{"heartwall", false, true, false, true, 2},
		{"lavamd", false, false, true, false, 2},
		{"mergesort", false, true, false, true, 2},
		{"montecarlo", false, false, true, false, 2},
		{"spmv", false, false, false, false, 2},
		{"srad", false, false, false, false, 2},
		{"tpacf", false, false, true, true, 2},
	}
	for _, c := range cases {
		w, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		k := w.Build(8)
		counts := opCount(k)

		if got := hasDivergentBranch(k); got != c.divergent {
			t.Errorf("%s: divergent branch = %v, want %v", c.name, got, c.divergent)
		}
		if got := hasOp(k, isa.OpBarSync); got != c.barrier {
			t.Errorf("%s: barrier = %v, want %v", c.name, got, c.barrier)
		}
		if got := counts[isa.ClassSFU] > 0; got != c.sfu {
			t.Errorf("%s: SFU usage = %v, want %v", c.name, got, c.sfu)
		}
		if got := k.SharedMemWords > 0; got != c.sharedMem {
			t.Errorf("%s: shared memory = %v, want %v", c.name, got, c.sharedMem)
		}
		globals := 0
		for i := range k.Instrs {
			if k.Instrs[i].Op == isa.OpLdGlobal || k.Instrs[i].Op == isa.OpStGlobal {
				globals++
			}
		}
		if globals < c.minMemOps {
			t.Errorf("%s: only %d global memory ops, want >= %d", c.name, globals, c.minMemOps)
		}
	}
}

// TestBarrierKernelsKeepBaseSetHeadroom verifies the deadlock-avoidance
// precondition for every barrier kernel: the live set at every bar.sync
// fits under the paper's |Bs| for that kernel.
func TestBarrierKernelsKeepBaseSetHeadroom(t *testing.T) {
	for _, w := range All() {
		k := w.Build(8)
		if !hasOp(k, isa.OpBarSync) {
			continue
		}
		g, err := cfg.Build(k)
		if err != nil {
			t.Fatal(err)
		}
		inf := liveness.Analyze(k, g)
		if inf.MaxLiveAtBarrier > w.PaperBs {
			t.Errorf("%s: %d live at barrier exceeds paper Bs %d — the paper's split would deadlock",
				w.Name, inf.MaxLiveAtBarrier, w.PaperBs)
		}
	}
}

// TestScaleControlsGrid ensures Build(scale) shrinks only the grid.
func TestScaleControlsGrid(t *testing.T) {
	for _, w := range All() {
		k1 := w.Build(1)
		k8 := w.Build(8)
		if k8.GridCTAs >= k1.GridCTAs && k1.GridCTAs > 1 {
			t.Errorf("%s: scale did not shrink the grid (%d -> %d)", w.Name, k1.GridCTAs, k8.GridCTAs)
		}
		if k1.NumRegs != k8.NumRegs || k1.ThreadsPerCTA != k8.ThreadsPerCTA {
			t.Errorf("%s: scale changed the kernel shape", w.Name)
		}
		if len(k1.Instrs) != len(k8.Instrs) {
			t.Errorf("%s: scale changed the code", w.Name)
		}
	}
	// Degenerate scales clamp.
	w := registry[0]
	if k := w.Build(0); k.GridCTAs < 1 {
		t.Error("scale 0 must clamp")
	}
	if k := w.Build(1 << 20); k.GridCTAs != 1 {
		t.Error("huge scale must clamp the grid to 1")
	}
}

// TestStoreRegionsDisjointFromLoads: no load can ever touch the region
// where per-thread results land, so results are schedule-independent.
func TestStoreRegionsDisjointFromLoads(t *testing.T) {
	for _, w := range All() {
		k := w.Build(8)
		for i := range k.Instrs {
			in := &k.Instrs[i]
			switch in.Op {
			case isa.OpLdGlobal:
				// Loads address (masked value in [0, memMask]) + Off;
				// the offset must keep them below storeBase.
				if in.Off >= storeBase {
					t.Errorf("%s: load at %d reaches the store region", w.Name, i)
				}
			case isa.OpStGlobal:
				if in.Off < storeBase {
					t.Errorf("%s: store at %d writes into the load region", w.Name, i)
				}
			}
		}
	}
}

func TestPrngDeterminismAndSpread(t *testing.T) {
	a, b := newPrng(9), newPrng(9)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		va, vb := a.next(), b.next()
		if va != vb {
			t.Fatal("prng not deterministic")
		}
		seen[va] = true
	}
	if len(seen) < 990 {
		t.Errorf("prng output repeats suspiciously: %d unique of 1000", len(seen))
	}
	if f := newPrng(3).f01(); f < 0 || f >= 1 {
		t.Errorf("f01 out of range: %f", f)
	}
	if newPrng(0).next() == 0 {
		t.Error("zero seed must still produce output")
	}
}
