// Package workloads provides the sixteen benchmark kernels of the paper's
// Table I, rebuilt as synthetic equivalents in our ISA. The original CUDA
// binaries (Rodinia, Parboil, CUDA SDK) cannot run here, so each kernel is
// hand-written to match what the evaluation actually depends on: the
// per-thread architected register count, the live-register profile over
// time (Figure 1), the CTA shape and shared-memory footprint that set
// theoretical occupancy, and the memory/compute/divergence mix that
// determines how much latency hiding extra warps buy.
package workloads

import (
	"fmt"
	"sort"

	"regmutex/internal/isa"
)

// Workload is one Table I application.
type Workload struct {
	Name string

	// PaperRegs / PaperBs are Table I's columns: registers per thread
	// (raw) and the |Bs| the paper's heuristic chose.
	PaperRegs int
	PaperBs   int

	// RegisterLimited marks the Figure 7 set (occupancy limited by
	// register demand on the full-size register file); the remaining
	// applications form the Figure 8 half-register-file set.
	RegisterLimited bool

	// Build constructs the kernel. scale >= 1 shrinks the grid (and so
	// simulation time) for tests and benchmarks; scale 1 is the full
	// evaluation size.
	Build func(scale int) *isa.Kernel

	// Input fills global memory deterministically for the kernel.
	Input func(k *isa.Kernel, seed uint64) []uint64
}

// registry in Table I order (left column then right column).
var registry []*Workload

func register(w *Workload) { registry = append(registry, w) }

// All returns every workload, in a stable order.
func All() []*Workload {
	out := append([]*Workload(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Fig7Set returns the eight register-limited applications of section IV-A.
func Fig7Set() []*Workload { return filter(true) }

// Fig8Set returns the eight applications of the register-file-size
// reduction study (section IV-B).
func Fig8Set() []*Workload { return filter(false) }

func filter(limited bool) []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.RegisterLimited == limited {
			out = append(out, w)
		}
	}
	return out
}

// ByName finds a workload.
func ByName(name string) (*Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists all workload names.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// ---------------------------------------------------------------------
// Deterministic input generation.
// ---------------------------------------------------------------------

// prng is a small xorshift64* generator; deterministic and stdlib-free of
// global state so runs are reproducible.
type prng struct{ s uint64 }

func newPrng(seed uint64) *prng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &prng{s: seed}
}

func (p *prng) next() uint64 {
	p.s ^= p.s >> 12
	p.s ^= p.s << 25
	p.s ^= p.s >> 27
	return p.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (p *prng) intn(n int) uint64 { return p.next() % uint64(n) }

// f01 returns a float in [0, 1).
func (p *prng) f01() float64 { return float64(p.next()>>11) / (1 << 53) }

// defaultInput fills memory with small integers; kernels that need
// floats or structure override Input.
func defaultInput(k *isa.Kernel, seed uint64) []uint64 {
	g := make([]uint64, k.GlobalMemWords)
	p := newPrng(seed)
	for i := range g {
		g[i] = p.intn(1 << 16)
	}
	return g
}

// floatInput fills memory with floats in [lo, hi).
func floatInput(lo, hi float64) func(*isa.Kernel, uint64) []uint64 {
	return func(k *isa.Kernel, seed uint64) []uint64 {
		g := make([]uint64, k.GlobalMemWords)
		p := newPrng(seed)
		for i := range g {
			g[i] = isa.F2B(lo + (hi-lo)*p.f01())
		}
		return g
	}
}

func scaled(n, scale int) int {
	if scale < 1 {
		scale = 1
	}
	n /= scale
	if n < 1 {
		n = 1
	}
	return n
}

// ---------------------------------------------------------------------
// Kernel-construction helpers shared by the workload definitions.
// ---------------------------------------------------------------------

// gatherPeak emits the canonical register peak of these workloads: n
// independent global loads into the consecutive registers [first,
// first+n), mirroring a compiler filling a register tile, followed by a
// pairwise reduction tree into dst. The loads are independent, so the
// peak is memory-bound, which is exactly the situation where occupancy
// pays (section II).
func gatherPeak(b *isa.Builder, addr isa.Reg, base int64, stride int64, first isa.Reg, n int, dst isa.Reg, op func(d, a, c isa.Reg)) {
	for i := 0; i < n; i++ {
		b.LdGlobal(first+isa.Reg(i), isa.R(addr), base+int64(i)*stride)
	}
	// Reduction tree, pairwise in place.
	width := n
	for width > 1 {
		half := width / 2
		for i := 0; i < half; i++ {
			op(first+isa.Reg(i), first+isa.Reg(i), first+isa.Reg(width-1-i))
		}
		width -= half
	}
	if dst != first {
		op(dst, dst, first)
	}
}

// expandPeak emits the canonical short-lived register peak: n independent
// ALU expansions of a base-set value into the consecutive registers
// [first, first+n) — a compiler materialising a tile of intermediates —
// followed by a pairwise reduction tree into dst. Unlike gatherPeak it
// touches no memory, so the acquire region it creates is a short ALU
// burst, matching the episodic peaks of Figure 1.
func expandPeak(b *isa.Builder, src isa.Reg, first isa.Reg, n int, dst isa.Reg, op func(d, a, c isa.Reg)) {
	for i := 0; i < n; i++ {
		b.IAdd(first+isa.Reg(i), isa.R(src), isa.Imm(int64(i*13+5)))
	}
	width := n
	for width > 1 {
		half := width / 2
		for i := 0; i < half; i++ {
			op(first+isa.Reg(i), first+isa.Reg(i), first+isa.Reg(width-1-i))
		}
		width -= half
	}
	if dst != first {
		op(dst, dst, first)
	}
}

// iaddOp returns an integer-add combiner for gatherPeak on builder b.
func iaddOp(b *isa.Builder) func(d, a, c isa.Reg) {
	return func(d, a, c isa.Reg) { b.IAdd(d, isa.R(a), isa.R(c)) }
}

// faddOp returns a float-add combiner for gatherPeak on builder b.
func faddOp(b *isa.Builder) func(d, a, c isa.Reg) {
	return func(d, a, c isa.Reg) { b.FAdd(d, isa.R(a), isa.R(c)) }
}

// pinLongLived emits definitions for registers [lo, hi] from cheap
// arithmetic on seedReg and returns a closure that consumes all of them
// into acc at the end (keeping them live for the whole kernel, like the
// parameter/pointer state real kernels carry).
func pinLongLived(b *isa.Builder, seedReg isa.Reg, lo, hi int, acc isa.Reg) func() {
	for r := lo; r <= hi; r++ {
		b.IAdd(isa.Reg(r), isa.R(seedReg), isa.Imm(int64(r*17+3)))
	}
	return func() {
		for r := lo; r <= hi; r++ {
			b.IAdd(acc, isa.R(acc), isa.R(isa.Reg(r)))
		}
	}
}
