package workloads

import (
	"testing"

	"regmutex/internal/cfg"
	"regmutex/internal/core"
	"regmutex/internal/isa"
	"regmutex/internal/liveness"
	"regmutex/internal/occupancy"
	"regmutex/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	if got := len(All()); got != 16 {
		t.Fatalf("registry has %d workloads, want 16 (Table I)", got)
	}
	if got := len(Fig7Set()); got != 8 {
		t.Errorf("Fig7 set has %d, want 8", got)
	}
	if got := len(Fig8Set()); got != 8 {
		t.Errorf("Fig8 set has %d, want 8", got)
	}
	if _, err := ByName("bfs"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName should fail for unknown workloads")
	}
}

func TestKernelsValidateAndMatchTableI(t *testing.T) {
	for _, w := range All() {
		k := w.Build(4)
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if k.NumRegs != w.PaperRegs {
			t.Errorf("%s: NumRegs = %d, Table I says %d", w.Name, k.NumRegs, w.PaperRegs)
		}
		// Every architected register must actually be touched.
		if got := k.MaxTouchedReg(); got != k.NumRegs-1 {
			t.Errorf("%s: max touched reg r%d but NumRegs %d", w.Name, got, k.NumRegs)
		}
	}
}

func TestNoReadBeforeWrite(t *testing.T) {
	for _, w := range All() {
		k := w.Build(4)
		g, err := cfg.Build(k)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		inf := liveness.Analyze(k, g)
		if u := inf.UndefinedAtEntry(); !u.Empty() {
			t.Errorf("%s: reads %s before definition", w.Name, u)
		}
	}
}

// TestHeuristicSplits is the Table I calibration: the |Es| heuristic on
// the target machine should reproduce the paper's base-set sizes. Known,
// documented deviations (where our CTA-granularity occupancy arithmetic
// cannot reproduce the paper's pick) are listed explicitly so regressions
// elsewhere still fail the test.
func TestHeuristicSplits(t *testing.T) {
	knownDeviation := map[string]int{
		// paper Bs -> our Bs, see EXPERIMENTS.md for the analysis
		"dwt2d":     40, // paper 38
		"lavamd":    30, // paper 28
		"mergesort": 14, // paper 12
	}
	for _, w := range All() {
		machine := occupancy.GTX480()
		if !w.RegisterLimited {
			machine = occupancy.GTX480Half()
		}
		k := w.Build(4)
		res, err := core.Transform(k, core.Options{Config: machine})
		if err != nil {
			t.Errorf("%s: transform: %v", w.Name, err)
			continue
		}
		if res.Disabled() {
			t.Errorf("%s: transform disabled on %s: %s", w.Name, machine.Name, res.Split.Reason)
			continue
		}
		want := w.PaperBs
		if dev, ok := knownDeviation[w.Name]; ok {
			want = dev
		}
		if res.Split.Bs != want {
			t.Errorf("%s: heuristic Bs = %d (Es=%d, sections=%d, warps=%d), want %d (paper %d)",
				w.Name, res.Split.Bs, res.Split.Es, res.Split.Sections, res.Split.Warps, want, w.PaperBs)
		}
	}
}

// Fig8 workloads must be untouched by RegMutex on the full register file
// (their occupancy is not register-limited there).
func TestFig8DisabledOnFullRF(t *testing.T) {
	for _, w := range Fig8Set() {
		k := w.Build(4)
		res, err := core.Transform(k, core.Options{Config: occupancy.GTX480()})
		if err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if !res.Disabled() {
			t.Errorf("%s: expected zero-sized extended set on the full RF, got Bs=%d Es=%d",
				w.Name, res.Split.Bs, res.Split.Es)
		}
	}
}

// Fig7 workloads must be register-limited on the baseline.
func TestFig7RegisterLimited(t *testing.T) {
	c := occupancy.GTX480()
	for _, w := range Fig7Set() {
		k := w.Build(4)
		base := occupancy.Baseline(c, k)
		free := occupancy.Unconstrained(c, k)
		if base.WarpsPerSM >= free.WarpsPerSM {
			t.Errorf("%s: not register-limited (base %d warps, unconstrained %d)",
				w.Name, base.WarpsPerSM, free.WarpsPerSM)
		}
	}
}

// Every workload must run to completion on the simulator, both untouched
// and transformed, with identical memory contents.
func TestWorkloadsRunAndMatch(t *testing.T) {
	machine := occupancy.GTX480()
	machine.NumSMs = 2
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			k := w.Build(16)
			cfgRun := machine
			input := w.Input(k, 42)

			pre, err := core.Prepare(k)
			if err != nil {
				t.Fatal(err)
			}
			d1, err := sim.NewDevice(cfgRun, sim.DefaultTiming(), pre, sim.NewStaticPolicy(cfgRun), append([]uint64(nil), input...))
			if err != nil {
				t.Fatal(err)
			}
			st1, err := d1.Run()
			if err != nil {
				t.Fatal(err)
			}
			if st1.OOBAccesses > 0 {
				t.Errorf("static run has %d out-of-bounds accesses", st1.OOBAccesses)
			}

			target := occupancy.GTX480()
			if !w.RegisterLimited {
				target = occupancy.GTX480Half()
			}
			res, err := core.Transform(k, core.Options{Config: target})
			if err != nil {
				t.Fatal(err)
			}
			runCfg := target
			runCfg.NumSMs = 2
			d2, err := sim.NewDevice(runCfg, sim.DefaultTiming(), res.Kernel, sim.NewRegMutexPolicy(runCfg), append([]uint64(nil), input...))
			if err != nil {
				t.Fatal(err)
			}
			st2, err := d2.Run()
			if err != nil {
				t.Fatal(err)
			}
			for i := range d1.Global {
				if d1.Global[i] != d2.Global[i] {
					t.Fatalf("memory diverges at word %d: static=%d regmutex=%d", i, d1.Global[i], d2.Global[i])
				}
			}
			if !res.Disabled() && st2.AcquireAttempts == 0 {
				t.Errorf("transformed kernel never acquired")
			}
		})
	}
}

// The liveness profile must fluctuate (Figure 1's premise): peak live
// count well above the steady-state count.
func TestLivenessProfilesFluctuate(t *testing.T) {
	for _, name := range []string{"cutcp", "dwt2d", "heartwall", "hotspot3d", "particlefilter", "sad"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		k := w.Build(4)
		g, err := cfg.Build(k)
		if err != nil {
			t.Fatal(err)
		}
		inf := liveness.Analyze(k, g)
		lo, hi := k.NumRegs, 0
		for i := range k.Instrs {
			c := inf.CountAt(i)
			if k.Instrs[i].Op == isa.OpExit {
				continue
			}
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi < k.NumRegs-4 {
			t.Errorf("%s: peak live %d never approaches NumRegs %d", name, hi, k.NumRegs)
		}
		if lo > k.NumRegs/2 {
			t.Errorf("%s: minimum live %d too high — no fluctuation (regs %d)", name, lo, k.NumRegs)
		}
	}
}

func TestInputsDeterministic(t *testing.T) {
	for _, w := range All() {
		k := w.Build(8)
		a := w.Input(k, 7)
		b := w.Input(k, 7)
		if len(a) != k.GlobalMemWords {
			t.Errorf("%s: input length %d != GlobalMemWords %d", w.Name, len(a), k.GlobalMemWords)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: input not deterministic at %d", w.Name, i)
				break
			}
		}
	}
}
