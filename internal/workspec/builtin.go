package workspec

// Legacy rebuilds benchreg's pre-spec load phase as a Spec: one ASAP
// cohort of `jobs` bfs/static requests over a 4-seed pool (so
// duplicates coalesce in memo caches, as the old 4-shape loop's
// round-robin seeds did), paced only by the runner's in-flight window.
// The quick-mode defaults (jobs=24, scale=8, sms=2) are committed as
// examples/workloads/legacy-quick.yaml; a workspec test pins the file
// to this function so they cannot drift apart.
//
// The old CLI flags (-jobs) survive as a deprecated shim that
// synthesizes exactly this spec, so `-compare` against BENCH points
// recorded before the spec pipeline still measures the same traffic.
func Legacy(jobs, scale, sms int, quick bool) *Spec {
	name := "legacy"
	if quick {
		name = "legacy-quick"
	}
	return &Spec{
		Version: SpecVersion,
		Name:    name,
		Seed:    1,
		Cohorts: []Cohort{{
			Name:     "legacy",
			SLOClass: "legacy",
			Requests: jobs,
			Arrival:  Arrival{Process: ProcessASAP},
			Size: Size{
				Workload: "bfs",
				Policy:   "static",
				Scale:    scale,
				SMs:      sms,
				SeedPool: 4,
			},
		}},
	}
}
