package workspec

import (
	"fmt"
	"os"

	"regmutex/internal/specfile"
)

// ParseError is a syntax-level rejection, addressed by source line. It
// is the shared spec-front-end error (internal/specfile) labeled with
// this package's vocabulary; the alias keeps `*workspec.ParseError`
// working for existing errors.As callers.
type ParseError = specfile.ParseError

// Parse reads a workload spec from YAML-subset or JSON bytes (JSON when
// the first non-space byte is '{'), decodes it strictly — unknown keys
// are a *ParseError, not a silent skip — and validates it. The YAML
// subset is block mappings and sequences by indentation, "- " list
// items, inline flow lists ([a, b]), quoted or bare scalars, and "#"
// comments; anchors, multi-document streams, and multiline strings are
// deliberately out (see DESIGN.md §13 for the grammar; the decoder
// itself lives in internal/specfile and is shared with internal/hypo).
func Parse(data []byte) (*Spec, error) {
	var spec Spec
	if err := specfile.Decode(data, "workspec", &spec); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// ParseFile loads and parses a spec file.
func ParseFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}
