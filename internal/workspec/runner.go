package workspec

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"regmutex/internal/obs"
	"regmutex/internal/service"
)

// RunnerOptions tunes one schedule run against a daemon or router.
type RunnerOptions struct {
	// BaseURL is the gpusimd or gpusimrouter endpoint
	// ("http://127.0.0.1:8080").
	BaseURL string
	// Client overrides the HTTP client (nil = http.DefaultClient).
	Client *http.Client
	// Compress divides every arrival offset: 2 replays a schedule at
	// twice real-time speed, 0 or 1 keeps it untouched. ASAP schedules
	// are unaffected (their offsets are zero).
	Compress float64
	// MaxInFlight caps concurrent outstanding requests (default 8) —
	// the closed-loop window that paces ASAP schedules.
	MaxInFlight int
	// Registry receives the per-SLO-class series (nil = private):
	//
	//	load.<class>.latency_seconds   histogram of ?wait=1 round trips
	//	load.<class>.jobs_done         counter
	//	load.<class>.jobs_failed       counter
	//	load.<class>.jobs_coalesced    counter (memo-served duplicates)
	Registry *obs.Registry
	// OnSubmit fires in schedule order just before item i is submitted;
	// benchreg's fleet phase uses it to kill an instance mid-storm.
	OnSubmit func(i int)
	// Logger narrates progress; nil discards.
	Logger *slog.Logger
}

// ClassStats is one SLO class's outcome.
type ClassStats struct {
	Jobs      int64                 `json:"jobs"`
	Failed    int64                 `json:"failed"`
	Coalesced int64                 `json:"coalesced"`
	Latency   obs.HistogramSnapshot `json:"-"`
}

// RunResult summarizes a completed schedule run.
type RunResult struct {
	Jobs        int
	WallSeconds float64
	JobsPerSec  float64
	Coalesced   int64
	// MemoHitRate is the client-observed fraction of jobs served
	// without a fresh simulation (coalesced / jobs).
	MemoHitRate float64
	Classes     map[string]*ClassStats
	// Fingerprints is the submitted per-request-fingerprint multiset —
	// the record→replay equality witness.
	Fingerprints map[uint64]int
}

// jobView is the slice of the daemon/router job response the runner
// needs; both speak this shape.
type jobView struct {
	ID        string             `json:"id"`
	State     string             `json:"state"`
	Coalesced bool               `json:"coalesced"`
	Error     *service.ErrorBody `json:"error"`
}

// Run drives the schedule against BaseURL: each item is submitted as
// POST /v1/jobs?wait=1 at its (compressed) arrival offset, bounded by
// MaxInFlight, and its round-trip latency lands in its SLO class's
// histogram. The first failed job aborts the remainder of the
// schedule and surfaces as the returned error.
func Run(ctx context.Context, sched *Schedule, o RunnerOptions) (*RunResult, error) {
	client := o.Client
	if client == nil {
		client = http.DefaultClient
	}
	compress := o.Compress
	if compress <= 0 {
		compress = 1
	}
	inflight := o.MaxInFlight
	if inflight <= 0 {
		inflight = 8
	}
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := o.Logger
	if log == nil {
		log = obs.NopLogger()
	}

	classes := map[string]bool{}
	for _, it := range sched.Items {
		classes[it.SLOClass] = true
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	aborted := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	res := &RunResult{
		Jobs:         len(sched.Items),
		Classes:      map[string]*ClassStats{},
		Fingerprints: map[uint64]int{},
	}
	for _, it := range sched.Items {
		res.Fingerprints[it.Req.Fingerprint()]++
	}

	log.Info("schedule run", "spec", sched.SpecName, "items", len(sched.Items),
		"classes", len(classes), "compress", compress, "max_in_flight", inflight)
	sem := make(chan struct{}, inflight)
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C
	for i, it := range sched.Items {
		if aborted() {
			break
		}
		// Open-loop pacing: wait for the item's arrival time, then for a
		// free in-flight slot (ASAP items skip straight to the slot wait).
		if wait := time.Duration(float64(it.At) / compress); wait > 0 {
			if sleep := time.Until(start.Add(wait)); sleep > 0 {
				timer.Reset(sleep)
				select {
				case <-timer.C:
				case <-ctx.Done():
					fail(ctx.Err())
				}
			}
		}
		if aborted() {
			break
		}
		if o.OnSubmit != nil {
			o.OnSubmit(i)
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			fail(ctx.Err())
		}
		if aborted() {
			break
		}
		wg.Add(1)
		go func(it Item) {
			defer wg.Done()
			defer func() { <-sem }()
			coalesced, err := submitWait(ctx, client, o.BaseURL, it, reg)
			if err != nil {
				reg.Counter("load." + it.SLOClass + ".jobs_failed").Inc()
				fail(fmt.Errorf("cohort %s (slo %s): %w", it.Cohort, it.SLOClass, err))
				return
			}
			reg.Counter("load." + it.SLOClass + ".jobs_done").Inc()
			if coalesced {
				reg.Counter("load." + it.SLOClass + ".jobs_coalesced").Inc()
			}
		}(it)
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	if firstErr != nil {
		return nil, firstErr
	}
	if res.WallSeconds > 0 {
		res.JobsPerSec = float64(res.Jobs) / res.WallSeconds
	}
	for class := range classes {
		cs := &ClassStats{
			Jobs:      reg.Counter("load." + class + ".jobs_done").Value(),
			Failed:    reg.Counter("load." + class + ".jobs_failed").Value(),
			Coalesced: reg.Counter("load." + class + ".jobs_coalesced").Value(),
			Latency:   reg.Histogram("load." + class + ".latency_seconds").Snapshot(),
		}
		res.Classes[class] = cs
		res.Coalesced += cs.Coalesced
	}
	if res.Jobs > 0 {
		res.MemoHitRate = float64(res.Coalesced) / float64(res.Jobs)
	}
	return res, nil
}

// submitWait POSTs one request in synchronous mode and reports whether
// the job was memo-coalesced. The round trip is observed into the SLO
// class's latency histogram whatever the outcome.
func submitWait(ctx context.Context, client *http.Client, base string, it Item, reg *obs.Registry) (bool, error) {
	body, err := json.Marshal(it.Req)
	if err != nil {
		return false, err
	}
	t0 := time.Now()
	defer func() {
		reg.Histogram("load." + it.SLOClass + ".latency_seconds").Observe(time.Since(t0).Seconds())
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs?wait=1", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error *service.ErrorBody `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&eb)
		if eb.Error != nil {
			return false, fmt.Errorf("submit: %w", eb.Error)
		}
		return false, fmt.Errorf("submit: status %d", resp.StatusCode)
	}
	var view jobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return false, err
	}
	if view.State != service.StateDone {
		return false, fmt.Errorf("job %s ended %q (%+v)", view.ID, view.State, view.Error)
	}
	return view.Coalesced, nil
}
