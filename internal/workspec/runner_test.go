package workspec

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"regmutex/internal/obs"
	"regmutex/internal/service"
)

// stubDaemon speaks just enough of the gpusimd job API for the runner:
// POST /v1/jobs?wait=1 returns a done job, flagged coalesced when the
// request fingerprint was seen before — a perfect memo cache.
type stubDaemon struct {
	mu         sync.Mutex
	seen       map[uint64]int
	inFlight   int
	maxFlight  int
	submissons int
}

func (d *stubDaemon) handler(t *testing.T) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req service.SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("stub decode: %v", err)
		}
		d.mu.Lock()
		d.submissons++
		d.inFlight++
		if d.inFlight > d.maxFlight {
			d.maxFlight = d.inFlight
		}
		fp := req.Fingerprint()
		coalesced := d.seen[fp] > 0
		d.seen[fp]++
		d.mu.Unlock()
		defer func() {
			d.mu.Lock()
			d.inFlight--
			d.mu.Unlock()
		}()
		json.NewEncoder(w).Encode(map[string]any{
			"id": fmt.Sprintf("j%06d", d.submissons), "state": "done", "coalesced": coalesced,
		})
	}
}

func smokeSchedule(t *testing.T) *Schedule {
	t.Helper()
	spec, err := ParseFile("../../examples/workloads/load-smoke.yaml")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func TestRunnerDrivesScheduleWithClassMetrics(t *testing.T) {
	sched := smokeSchedule(t)
	stub := &stubDaemon{seen: map[uint64]int{}}
	srv := httptest.NewServer(stub.handler(t))
	defer srv.Close()

	reg := obs.NewRegistry()
	rr, err := Run(context.Background(), sched, RunnerOptions{
		BaseURL:     srv.URL,
		Compress:    100, // squeeze the ~1s spec into ~10ms of pacing
		MaxInFlight: 2,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Jobs != len(sched.Items) || stub.submissons != rr.Jobs {
		t.Fatalf("jobs = %d, submissions = %d, want %d", rr.Jobs, stub.submissons, len(sched.Items))
	}
	if stub.maxFlight > 2 {
		t.Fatalf("in-flight window violated: saw %d concurrent, cap 2", stub.maxFlight)
	}
	// Both SLO classes from the spec must report, with populated
	// histograms and the runner's observed coalescing.
	for _, class := range []string{"interactive", "batch"} {
		cs := rr.Classes[class]
		if cs == nil || cs.Jobs != 6 || cs.Failed != 0 {
			t.Fatalf("class %s stats wrong: %+v", class, cs)
		}
		if cs.Latency.Count != 6 || cs.Latency.Max <= 0 {
			t.Fatalf("class %s histogram empty: %+v", class, cs.Latency)
		}
		if snap := reg.Histogram("load." + class + ".latency_seconds").Snapshot(); snap.Count != 6 {
			t.Fatalf("registry series load.%s.latency_seconds has %d observations", class, snap.Count)
		}
	}
	// 12 requests over two 2-seed pools: duplicates are certain, and the
	// stub coalesces every repeat.
	if rr.Coalesced == 0 || rr.MemoHitRate <= 0 {
		t.Fatalf("no coalescing observed: %+v", rr)
	}
	if !equalFingerprints(rr.Fingerprints, sched.Fingerprints()) {
		t.Fatalf("submitted multiset diverged from schedule:\n run  %v\n sched %v",
			rr.Fingerprints, sched.Fingerprints())
	}
}

func TestRunnerAbortsOnFirstFailure(t *testing.T) {
	sched := smokeSchedule(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{
			"error": map[string]string{"code": "draining", "message": "shutting down"},
		})
	}))
	defer srv.Close()
	_, err := Run(context.Background(), sched, RunnerOptions{BaseURL: srv.URL, Compress: 1000})
	if err == nil {
		t.Fatal("runner succeeded against a failing daemon")
	}
	if !strings.Contains(err.Error(), "cohort") || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("error lost its cohort/cause attribution: %v", err)
	}
}

func TestRunnerHonorsContextCancel(t *testing.T) {
	sched := smokeSchedule(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Compress left at real time: without cancellation this would pace
	// for about a second; a cancelled context must abort immediately.
	_, err := Run(ctx, sched, RunnerOptions{BaseURL: "http://127.0.0.1:0"})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
}

func equalFingerprints(a, b map[uint64]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
