package workspec

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"regmutex/internal/service"
)

// Item is one scheduled arrival: when it fires (offset from the run's
// start), which cohort and SLO class it belongs to, and the fully
// materialized request it submits.
type Item struct {
	// Seq is the item's position in the merged schedule (0-based).
	Seq int `json:"seq"`
	// At is the arrival offset. The runner divides it by its time
	// compression factor; the schedule itself is stored uncompressed.
	At       time.Duration         `json:"at_us"`
	Cohort   string                `json:"cohort"`
	SLOClass string                `json:"slo_class"`
	Req      service.SubmitRequest `json:"req"`
}

// Schedule is a compiled spec: the deterministic merged arrival
// sequence. Same spec content + seed ⇒ byte-identical Canonical() on
// every run, at every -par setting, on every worker count — nothing in
// the compilation reads wall clocks, maps, or global state.
type Schedule struct {
	SpecName string `json:"spec"`
	SpecID   string `json:"spec_id"`
	Seed     uint64 `json:"seed"`
	Items    []Item `json:"items"`
}

// Canonical renders the schedule as deterministic JSON bytes — the
// byte-identity witness the determinism tests compare.
func (s *Schedule) Canonical() []byte {
	data, _ := json.MarshalIndent(s, "", " ")
	return append(data, '\n')
}

// Fingerprints returns the per-request-fingerprint multiset of the
// schedule: how many scheduled arrivals share each result identity.
// Record→replay round trips must preserve this multiset exactly.
func (s *Schedule) Fingerprints() map[uint64]int {
	out := map[uint64]int{}
	for _, it := range s.Items {
		out[it.Req.Fingerprint()]++
	}
	return out
}

// Compile validates the spec and produces its deterministic schedule.
// Each cohort draws arrivals and request shapes from its own PRNG
// stream (seeded by spec seed ⊕ cohort name), so adding a cohort never
// perturbs the schedule of existing ones; the merged order sorts by
// (arrival time, cohort, per-cohort index).
func Compile(spec *Spec) (*Schedule, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sched := &Schedule{SpecName: spec.Name, SpecID: spec.Identity(), Seed: spec.Seed}
	type keyed struct {
		item   Item
		cohort int
		index  int
	}
	var all []keyed
	for ci, c := range spec.Cohorts {
		rng := newRand(cohortSeed(spec.Seed, c.Name))
		times := arrivalTimes(c.Arrival, c.Requests, rng)
		for i := 0; i < c.Requests; i++ {
			req := drawRequest(c, rng)
			all = append(all, keyed{
				item: Item{
					At:       times[i],
					Cohort:   c.Name,
					SLOClass: c.SLOClass,
					Req:      req,
				},
				cohort: ci,
				index:  i,
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.item.At != b.item.At {
			return a.item.At < b.item.At
		}
		if a.cohort != b.cohort {
			return a.cohort < b.cohort
		}
		return a.index < b.index
	})
	for i, k := range all {
		k.item.Seq = i
		sched.Items = append(sched.Items, k.item)
	}
	return sched, nil
}

// arrivalTimes draws n arrival offsets for process a. Offsets are
// quantized to microseconds so Canonical() carries no float text.
func arrivalTimes(a Arrival, n int, rng *rand64) []time.Duration {
	out := make([]time.Duration, n)
	switch a.Process {
	case ProcessASAP:
		// all zero
	case ProcessConstant:
		gap := 1 / a.RatePerSec
		for i := range out {
			out[i] = quantize(float64(i) * gap)
		}
	case ProcessPoisson:
		t := 0.0
		for i := range out {
			t += rng.exp(a.RatePerSec)
			out[i] = quantize(t)
		}
	case ProcessDiurnal:
		// Non-homogeneous Poisson by thinning: candidate arrivals at the
		// peak rate, each kept with probability rate(t)/peak.
		peak := 0.0
		for _, r := range a.RatesPerSec {
			peak = math.Max(peak, r)
		}
		t := 0.0
		for i := 0; i < n; {
			t += rng.exp(peak)
			if rng.f01()*peak <= diurnalRate(a, t) {
				out[i] = quantize(t)
				i++
			}
		}
	case ProcessBurst:
		gap := a.BurstGapSec
		for i := range out {
			burst, pos := i/a.BurstSize, i%a.BurstSize
			out[i] = quantize(float64(burst)*a.IntervalSec + float64(pos)*gap)
		}
	}
	return out
}

// diurnalRate evaluates the piecewise-constant rate profile at time t
// (seconds), repeating every PeriodSec.
func diurnalRate(a Arrival, t float64) float64 {
	frac := math.Mod(t, a.PeriodSec) / a.PeriodSec
	idx := int(frac * float64(len(a.RatesPerSec)))
	if idx >= len(a.RatesPerSec) {
		idx = len(a.RatesPerSec) - 1
	}
	return a.RatesPerSec[idx]
}

func quantize(sec float64) time.Duration {
	return time.Duration(math.Round(sec*1e6)) * time.Microsecond
}

// drawRequest materializes one request from the cohort's size
// distribution. Draw order is fixed (workload, scale, seed) so the
// stream stays reproducible.
func drawRequest(c Cohort, rng *rand64) service.SubmitRequest {
	z := c.Size
	req := service.SubmitRequest{
		Workload: z.Workload,
		Policy:   z.Policy,
		Scale:    z.Scale,
		SMs:      z.SMs,
		Half:     z.Half,
		Priority: z.Priority,
		Client:   c.Name,
		SLOClass: c.SLOClass,
	}
	if len(z.Workloads) > 0 {
		req.Workload = weightedPick(z.Workloads, rng)
	}
	if len(z.Scales) > 0 {
		req.Scale = z.Scales[rng.intn(len(z.Scales))]
	}
	if z.SeedPool > 0 {
		seed := rng.intn(z.SeedPool)
		u := uint64(seed)
		req.Seed = &u
	}
	return req
}

func weightedPick(choices []WeightedChoice, rng *rand64) string {
	total := 0.0
	for _, c := range choices {
		total += weight(c)
	}
	x := rng.f01() * total
	for _, c := range choices {
		x -= weight(c)
		if x < 0 {
			return c.Name
		}
	}
	return choices[len(choices)-1].Name
}

func weight(c WeightedChoice) float64 {
	if c.Weight <= 0 {
		return 1
	}
	return c.Weight
}

// cohortSeed derives the cohort's private PRNG seed from the spec seed
// and the cohort name.
func cohortSeed(seed uint64, name string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, name)
	return h.Sum64()
}

// rand64 is a self-contained xorshift64* stream: deterministic across
// platforms and Go versions, which math/rand does not promise.
type rand64 struct{ s uint64 }

func newRand(seed uint64) *rand64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rand64{s: seed}
}

func (r *rand64) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// f01 returns a uniform float in [0, 1).
func (r *rand64) f01() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int in [0, n).
func (r *rand64) intn(n int) int { return int(r.next() % uint64(n)) }

// exp draws an exponential inter-arrival gap at the given rate.
func (r *rand64) exp(rate float64) float64 {
	return -math.Log(1-r.f01()) / rate
}
