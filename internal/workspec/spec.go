// Package workspec is the workload-specification layer of the load
// pipeline: a versioned, declarative description of traffic — client
// cohorts, each with an arrival process, a size distribution over
// kernel/grid parameters, and an SLO class — compiled into a
// deterministic arrival schedule (same spec + seed ⇒ byte-identical
// schedule) and driven against a gpusimd daemon or a gpusimrouter
// fleet as real service.SubmitRequest streams. Recorded traces replay
// through the same pipeline as just another schedule source.
//
// Everything that used to construct load by hand — benchreg's
// hardcoded shape loop, its router fleet phase, ad-hoc harness job
// bodies — converges on the one Spec → Schedule → Runner path.
package workspec

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"regmutex/internal/harness"
	"regmutex/internal/workloads"
)

// SpecVersion is the only spec version this revision understands.
const SpecVersion = 1

// Arrival processes.
const (
	ProcessASAP     = "asap"     // every arrival at t=0: a closed loop paced by the runner's in-flight cap
	ProcessConstant = "constant" // fixed spacing 1/rate
	ProcessPoisson  = "poisson"  // memoryless: exponential inter-arrival at rate
	ProcessDiurnal  = "diurnal"  // piecewise-constant rate over a repeating period (multi-period/diurnal)
	ProcessBurst    = "burst"    // bursts of burst_size back-to-back arrivals every interval_sec
)

// Spec is one workload specification: the declarative root that a
// YAML-subset or JSON file parses into. Same Spec content + Seed
// always compiles to a byte-identical Schedule.
type Spec struct {
	// Version pins the grammar; only SpecVersion parses.
	Version int `json:"version"`
	// Name identifies the spec in BENCH_<date>.json load sections;
	// benchreg -compare only diffs load phases whose spec identity
	// (name + content + seed) matches.
	Name string `json:"name"`
	// Seed drives every random draw of the compilation (arrival jitter,
	// size-distribution sampling). Zero is a valid, honored seed.
	Seed    uint64   `json:"seed"`
	Cohorts []Cohort `json:"cohorts"`
}

// Cohort is one client population: how often its requests arrive
// (Arrival), what each request looks like (Size), and which SLO class
// its latency is accounted under.
type Cohort struct {
	Name string `json:"name"`
	// SLOClass buckets this cohort's latency histograms and counters
	// ("critical", "batch", ...). Cohorts may share a class.
	SLOClass string `json:"slo_class"`
	// Requests is how many arrivals the schedule holds for this cohort.
	Requests int     `json:"requests"`
	Arrival  Arrival `json:"arrival"`
	Size     Size    `json:"size"`
}

// Arrival selects and parameterizes the cohort's arrival process.
type Arrival struct {
	Process string `json:"process"`
	// RatePerSec is the mean arrival rate for constant and poisson.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// PeriodSec and RatesPerSec define the diurnal process: the period
	// is split into len(RatesPerSec) equal slices, each an independent
	// Poisson rate; the pattern repeats until Requests arrivals exist.
	PeriodSec   float64   `json:"period_sec,omitempty"`
	RatesPerSec []float64 `json:"rates_per_sec,omitempty"`
	// BurstSize arrivals land back-to-back (BurstGapSec apart, default
	// 0) every IntervalSec.
	BurstSize   int     `json:"burst_size,omitempty"`
	IntervalSec float64 `json:"interval_sec,omitempty"`
	BurstGapSec float64 `json:"burst_gap_sec,omitempty"`
}

// Size is the request-shape distribution: which workload/policy each
// arrival runs and on what grid/machine scale. Weighted workload
// choices plus a small seed pool model skewed popularity — a few hot
// request shapes dominating, which is what exercises memo hit rates.
type Size struct {
	// Exactly one of Workload (every request identical) or Workloads
	// (weighted draw per request).
	Workload  string           `json:"workload,omitempty"`
	Workloads []WeightedChoice `json:"workloads,omitempty"`
	// Policy is a single policy name or "all" ("" = service default).
	Policy string `json:"policy,omitempty"`
	// Scale divides the workload grid (0 = service default); Scales, if
	// set, is a uniform choice set drawn per request instead.
	Scale  int   `json:"scale,omitempty"`
	Scales []int `json:"scales,omitempty"`
	SMs    int   `json:"sms,omitempty"`
	Half   bool  `json:"half,omitempty"`
	// SeedPool draws each request's input seed uniformly from
	// [0, SeedPool); a small pool yields duplicate requests that
	// coalesce in memo caches. 0 pins the seed to the service default.
	SeedPool int `json:"seed_pool,omitempty"`
	// Priority orders the daemon's queue (higher pops first).
	Priority int `json:"priority,omitempty"`
}

// WeightedChoice is one option of a weighted draw. Weight defaults
// to 1 when omitted.
type WeightedChoice struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight,omitempty"`
}

// SpecError is one validation finding, addressed by a dotted path into
// the spec ("cohorts[2].arrival.rate_per_sec").
type SpecError struct {
	Path string
	Msg  string
}

func (e *SpecError) Error() string { return fmt.Sprintf("workspec: %s: %s", e.Path, e.Msg) }

// ValidationError aggregates every SpecError found in one pass, so a
// rejected spec names all its problems at once.
type ValidationError struct {
	Errs []*SpecError
}

func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Errs))
	for i, s := range e.Errs {
		msgs[i] = s.Error()
	}
	return strings.Join(msgs, "\n")
}

// Validate checks the spec against the grammar's semantic rules and
// returns a *ValidationError listing every violation, or nil.
func (s *Spec) Validate() error {
	var errs []*SpecError
	bad := func(path, format string, args ...any) {
		errs = append(errs, &SpecError{Path: path, Msg: fmt.Sprintf(format, args...)})
	}
	if s.Version != SpecVersion {
		bad("version", "got %d, this build understands only %d", s.Version, SpecVersion)
	}
	if s.Name == "" {
		bad("name", "required")
	}
	if len(s.Cohorts) == 0 {
		bad("cohorts", "at least one cohort required")
	}
	seen := map[string]bool{}
	for i, c := range s.Cohorts {
		p := fmt.Sprintf("cohorts[%d]", i)
		if c.Name == "" {
			bad(p+".name", "required")
		} else if seen[c.Name] {
			bad(p+".name", "duplicate cohort name %q", c.Name)
		}
		seen[c.Name] = true
		if c.SLOClass == "" {
			bad(p+".slo_class", "required")
		}
		if c.Requests <= 0 {
			bad(p+".requests", "must be > 0, got %d", c.Requests)
		}
		validateArrival(p+".arrival", c.Arrival, bad)
		validateSize(p+".size", c.Size, bad)
	}
	if len(errs) > 0 {
		return &ValidationError{Errs: errs}
	}
	return nil
}

func validateArrival(p string, a Arrival, bad func(string, string, ...any)) {
	switch a.Process {
	case ProcessASAP:
	case ProcessConstant, ProcessPoisson:
		if a.RatePerSec <= 0 {
			bad(p+".rate_per_sec", "process %q needs rate_per_sec > 0", a.Process)
		}
	case ProcessDiurnal:
		if a.PeriodSec <= 0 {
			bad(p+".period_sec", "diurnal needs period_sec > 0")
		}
		if len(a.RatesPerSec) == 0 {
			bad(p+".rates_per_sec", "diurnal needs at least one period rate")
		}
		peak := 0.0
		for j, r := range a.RatesPerSec {
			if r < 0 {
				bad(fmt.Sprintf("%s.rates_per_sec[%d]", p, j), "rate must be >= 0, got %g", r)
			}
			if r > peak {
				peak = r
			}
		}
		if peak == 0 && len(a.RatesPerSec) > 0 {
			bad(p+".rates_per_sec", "all period rates are zero")
		}
	case ProcessBurst:
		if a.BurstSize <= 0 {
			bad(p+".burst_size", "burst needs burst_size > 0")
		}
		if a.IntervalSec <= 0 {
			bad(p+".interval_sec", "burst needs interval_sec > 0")
		}
	case "":
		bad(p+".process", "required (asap | constant | poisson | diurnal | burst)")
	default:
		bad(p+".process", "unknown process %q (want asap | constant | poisson | diurnal | burst)", a.Process)
	}
}

func validateSize(p string, z Size, bad func(string, string, ...any)) {
	switch {
	case z.Workload == "" && len(z.Workloads) == 0:
		bad(p, "one of workload or workloads required")
	case z.Workload != "" && len(z.Workloads) > 0:
		bad(p, "workload and workloads are mutually exclusive")
	}
	check := func(path, name string) {
		if _, err := workloads.ByName(name); err != nil {
			bad(path, "unknown workload %q", name)
		}
	}
	if z.Workload != "" {
		check(p+".workload", z.Workload)
	}
	for j, w := range z.Workloads {
		wp := fmt.Sprintf("%s.workloads[%d]", p, j)
		if w.Name == "" {
			bad(wp+".name", "required")
		} else {
			check(wp+".name", w.Name)
		}
		if w.Weight < 0 {
			bad(wp+".weight", "must be >= 0, got %g", w.Weight)
		}
	}
	if z.Policy != "" && z.Policy != "all" {
		known := false
		for _, n := range harness.PolicyNames {
			if n == z.Policy {
				known = true
			}
		}
		if !known {
			bad(p+".policy", "unknown policy %q (want all | %s)", z.Policy, strings.Join(harness.PolicyNames, " | "))
		}
	}
	if z.Scale < 0 {
		bad(p+".scale", "must be >= 0, got %d", z.Scale)
	}
	for j, sc := range z.Scales {
		if sc <= 0 {
			bad(fmt.Sprintf("%s.scales[%d]", p, j), "must be > 0, got %d", sc)
		}
	}
	if z.SMs < 0 {
		bad(p+".sms", "must be >= 0, got %d", z.SMs)
	}
	if z.SeedPool < 0 {
		bad(p+".seed_pool", "must be >= 0, got %d", z.SeedPool)
	}
}

// Identity fingerprints the spec: an FNV-1a hash over its canonical
// JSON form, seed included (same spec + seed ⇒ same schedule ⇒ same
// identity). benchreg stamps it into load/fleet sections so -compare
// never diffs load phases produced by different traffic.
func (s *Spec) Identity() string {
	data, _ := json.Marshal(s)
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// TotalRequests sums every cohort's request count.
func (s *Spec) TotalRequests() int {
	n := 0
	for _, c := range s.Cohorts {
		n += c.Requests
	}
	return n
}
