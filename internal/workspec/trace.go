package workspec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"regmutex/internal/service"
)

// TraceRecord is one accepted submission: its arrival offset (ms from
// the recorder's first observation epoch) and the request itself.
// Traces are JSONL — one record per line — so a daemon can append
// under load and a torn final line only loses that line.
type TraceRecord struct {
	AtMS float64               `json:"at_ms"`
	Req  service.SubmitRequest `json:"req"`
}

// TraceWriter appends accepted requests to a JSONL trace. Its Record
// method matches service.Config.OnAccept, so wiring a daemon for
// production-trace capture is one assignment (gpusimd -record).
// Safe for concurrent use.
type TraceWriter struct {
	mu    sync.Mutex
	w     io.Writer
	c     io.Closer
	enc   *json.Encoder
	start time.Time
	n     int
	err   error
}

// NewTraceWriter starts a recorder over w. When w is also an
// io.Closer, Close forwards to it.
func NewTraceWriter(w io.Writer) *TraceWriter {
	t := &TraceWriter{w: w, enc: json.NewEncoder(w), start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// CreateTrace opens (truncating) a trace file for recording.
func CreateTrace(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTraceWriter(bufferedFile{bufio.NewWriter(f), f}), nil
}

// bufferedFile flushes its buffer before closing the underlying file.
type bufferedFile struct {
	*bufio.Writer
	f *os.File
}

func (b bufferedFile) Close() error {
	if err := b.Writer.Flush(); err != nil {
		b.f.Close()
		return err
	}
	return b.f.Close()
}

// Record appends one accepted request, stamped with its arrival offset.
// Errors are sticky and surface from Close — recording must never fail
// the admission path it observes.
func (t *TraceWriter) Record(req service.SubmitRequest) {
	t.mu.Lock()
	defer t.mu.Unlock()
	at := time.Since(t.start).Seconds() * 1000
	if t.err == nil {
		t.err = t.enc.Encode(TraceRecord{AtMS: at, Req: req})
	}
	t.n++
}

// Count reports how many records were offered (including any dropped
// by a sticky write error).
func (t *TraceWriter) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Close flushes and closes the trace, returning the first write error.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c != nil {
		if cerr := t.c.Close(); t.err == nil {
			t.err = cerr
		}
		t.c = nil
	}
	return t.err
}

// ReadTrace parses a JSONL trace. A torn final line (a crash mid-append)
// is tolerated and skipped; corruption anywhere else is an error naming
// the line.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []TraceRecord
	var torn bool
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		if torn {
			return nil, fmt.Errorf("workspec trace: line %d: corrupt record mid-file", line-1)
		}
		var rec TraceRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			torn = true // only acceptable as the final line
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workspec trace: %w", err)
	}
	return out, nil
}

// ReadTraceFile loads a JSONL trace from disk.
func ReadTraceFile(path string) ([]TraceRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// FromTrace turns a recorded trace into a schedule — replay is just
// another schedule source. Arrival offsets are normalized so the first
// record fires at t=0 (the runner's Compress option time-compresses
// it); cohort and SLO class come from the recorded requests' Client
// and SLOClass attribution fields ("replay"/"default" when absent).
func FromTrace(name string, recs []TraceRecord) (*Schedule, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("workspec trace: empty trace")
	}
	if name == "" {
		name = "trace"
	}
	h := fnv.New64a()
	sched := &Schedule{SpecName: name}
	base := recs[0].AtMS
	for i, rec := range recs {
		cohort := rec.Req.Client
		if cohort == "" {
			cohort = "replay"
		}
		class := rec.Req.SLOClass
		if class == "" {
			class = "default"
		}
		at := time.Duration(math.Round((rec.AtMS-base)*1000)) * time.Microsecond
		if at < 0 {
			return nil, fmt.Errorf("workspec trace: record %d: arrival offset went backwards", i)
		}
		sched.Items = append(sched.Items, Item{
			Seq:      i,
			At:       at,
			Cohort:   cohort,
			SLOClass: class,
			Req:      rec.Req,
		})
		data, _ := json.Marshal(rec)
		h.Write(data)
		h.Write([]byte{'\n'})
	}
	sched.SpecID = fmt.Sprintf("%016x", h.Sum64())
	return sched, nil
}
