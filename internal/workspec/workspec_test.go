package workspec

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"regmutex/internal/service"
)

// goldenYAML exercises the whole YAML subset: nested block mappings,
// "- " sequence items, flow lists, quoted strings, comments, floats.
const goldenYAML = `
# golden spec
version: 1
name: golden        # trailing comment
seed: 99
cohorts:
  - name: web
    slo_class: "critical"
    requests: 5
    arrival:
      process: poisson
      rate_per_sec: 12.5
    size:
      workloads:
        - name: bfs
          weight: 3
        - name: sad
      policy: static
      scales: [4, 8]
      sms: 2
      seed_pool: 2
  - name: batch
    slo_class: 'batch'
    requests: 3
    arrival:
      process: diurnal
      period_sec: 2
      rates_per_sec: [1, 10, 3]
    size:
      workload: sad
      policy: regmutex
      scale: 8
      sms: 2
      priority: -1
`

func goldenSpec() *Spec {
	return &Spec{
		Version: 1,
		Name:    "golden",
		Seed:    99,
		Cohorts: []Cohort{
			{
				Name: "web", SLOClass: "critical", Requests: 5,
				Arrival: Arrival{Process: ProcessPoisson, RatePerSec: 12.5},
				Size: Size{
					Workloads: []WeightedChoice{{Name: "bfs", Weight: 3}, {Name: "sad"}},
					Policy:    "static",
					Scales:    []int{4, 8},
					SMs:       2,
					SeedPool:  2,
				},
			},
			{
				Name: "batch", SLOClass: "batch", Requests: 3,
				Arrival: Arrival{Process: ProcessDiurnal, PeriodSec: 2, RatesPerSec: []float64{1, 10, 3}},
				Size:    Size{Workload: "sad", Policy: "regmutex", Scale: 8, SMs: 2, Priority: -1},
			},
		},
	}
}

func TestParseYAMLGolden(t *testing.T) {
	got, err := Parse([]byte(goldenYAML))
	if err != nil {
		t.Fatal(err)
	}
	if want := goldenSpec(); !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed spec mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseJSONEquivalent(t *testing.T) {
	jsonSpec := `{
	  "version": 1, "name": "golden", "seed": 99,
	  "cohorts": [
	    {"name": "web", "slo_class": "critical", "requests": 5,
	     "arrival": {"process": "poisson", "rate_per_sec": 12.5},
	     "size": {"workloads": [{"name": "bfs", "weight": 3}, {"name": "sad"}],
	              "policy": "static", "scales": [4, 8], "sms": 2, "seed_pool": 2}},
	    {"name": "batch", "slo_class": "batch", "requests": 3,
	     "arrival": {"process": "diurnal", "period_sec": 2, "rates_per_sec": [1, 10, 3]},
	     "size": {"workload": "sad", "policy": "regmutex", "scale": 8, "sms": 2, "priority": -1}}
	  ]
	}`
	fromJSON, err := Parse([]byte(jsonSpec))
	if err != nil {
		t.Fatal(err)
	}
	fromYAML, err := Parse([]byte(goldenYAML))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON, fromYAML) {
		t.Fatalf("JSON and YAML forms disagree:\n json %+v\n yaml %+v", fromJSON, fromYAML)
	}
	if fromJSON.Identity() != fromYAML.Identity() {
		t.Fatalf("identities differ: %s vs %s", fromJSON.Identity(), fromYAML.Identity())
	}
}

// TestParseRejects pins the typed-error contract: syntax problems are
// *ParseError (with a line when known), semantic problems are
// *ValidationError whose SpecErrors carry dotted paths.
func TestParseRejects(t *testing.T) {
	syntax := []struct {
		name, in, want string
		wantLine       bool
	}{
		{"empty", "   \n# only a comment\n", "empty spec", false},
		{"tab indent", "version: 1\n\tname: x\n", "tabs", true},
		{"unknown field", "version: 1\nname: x\nturbo: 9\ncohorts:\n  - name: a\n    slo_class: s\n    requests: 1\n    arrival:\n      process: asap\n    size:\n      workload: bfs\n", "unknown field", false},
		{"duplicate key", "version: 1\nversion: 2\n", "duplicate key", true},
		{"unterminated flow list", "version: 1\nname: x\ncohorts:\n  - name: a\n    slo_class: s\n    requests: 1\n    arrival:\n      process: diurnal\n      period_sec: 1\n      rates_per_sec: [1, 2\n    size:\n      workload: bfs\n", "unterminated flow list", true},
		{"bad json", "{not json", "bad JSON", false},
		{"scalar where mapping expected", "version: 1\njust a scalar line\n", "key: value", true},
	}
	for _, tc := range syntax {
		t.Run("syntax/"+tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *ParseError", err)
			}
			if !strings.Contains(pe.Msg, tc.want) {
				t.Fatalf("msg %q does not mention %q", pe.Msg, tc.want)
			}
			if tc.wantLine && pe.Line <= 0 {
				t.Fatalf("expected a source line, got %+v", pe)
			}
		})
	}

	semantic := []struct {
		name     string
		mutate   func(*Spec)
		wantPath string
	}{
		{"wrong version", func(s *Spec) { s.Version = 2 }, "version"},
		{"missing name", func(s *Spec) { s.Name = "" }, "name"},
		{"no cohorts", func(s *Spec) { s.Cohorts = nil }, "cohorts"},
		{"duplicate cohort", func(s *Spec) { s.Cohorts[1].Name = "web" }, "cohorts[1].name"},
		{"zero requests", func(s *Spec) { s.Cohorts[0].Requests = 0 }, "cohorts[0].requests"},
		{"missing slo class", func(s *Spec) { s.Cohorts[0].SLOClass = "" }, "cohorts[0].slo_class"},
		{"unknown process", func(s *Spec) { s.Cohorts[0].Arrival = Arrival{Process: "fractal"} }, "cohorts[0].arrival.process"},
		{"poisson without rate", func(s *Spec) { s.Cohorts[0].Arrival = Arrival{Process: ProcessPoisson} }, "cohorts[0].arrival.rate_per_sec"},
		{"diurnal all zero", func(s *Spec) {
			s.Cohorts[0].Arrival = Arrival{Process: ProcessDiurnal, PeriodSec: 1, RatesPerSec: []float64{0, 0}}
		}, "cohorts[0].arrival.rates_per_sec"},
		{"burst without size", func(s *Spec) { s.Cohorts[0].Arrival = Arrival{Process: ProcessBurst, IntervalSec: 1} }, "cohorts[0].arrival.burst_size"},
		{"workload and workloads", func(s *Spec) { s.Cohorts[0].Size.Workload = "bfs" }, "cohorts[0].size"},
		{"neither workload", func(s *Spec) { s.Cohorts[1].Size.Workload = "" }, "cohorts[1].size"},
		{"unknown workload", func(s *Spec) { s.Cohorts[1].Size.Workload = "raytrace" }, "cohorts[1].size.workload"},
		{"unknown policy", func(s *Spec) { s.Cohorts[1].Size.Policy = "greedy" }, "cohorts[1].size.policy"},
		{"negative seed pool", func(s *Spec) { s.Cohorts[0].Size.SeedPool = -1 }, "cohorts[0].size.seed_pool"},
	}
	for _, tc := range semantic {
		t.Run("semantic/"+tc.name, func(t *testing.T) {
			s := goldenSpec()
			tc.mutate(s)
			err := s.Validate()
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Fatalf("err = %v, want *ValidationError", err)
			}
			for _, se := range ve.Errs {
				if se.Path == tc.wantPath {
					return
				}
			}
			t.Fatalf("no SpecError at path %q in %v", tc.wantPath, err)
		})
	}
}

// TestValidationReportsAllProblems: a rejected spec names every
// violation in one pass, not just the first.
func TestValidationReportsAllProblems(t *testing.T) {
	s := goldenSpec()
	s.Version = 3
	s.Cohorts[0].Requests = -1
	s.Cohorts[1].Size.Workload = "nope"
	var ve *ValidationError
	if err := s.Validate(); !errors.As(err, &ve) || len(ve.Errs) != 3 {
		t.Fatalf("want 3 aggregated findings, got %v", err)
	}
}

// TestCompileDeterministic: same spec + seed compiles to byte-identical
// schedules, and each cohort's stream is independent — removing one
// cohort leaves the others' arrivals and request draws untouched.
func TestCompileDeterministic(t *testing.T) {
	spec, err := ParseFile("../../examples/workloads/bursty-mix.yaml")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatal("same spec+seed compiled to different schedules")
	}
	if a.SpecID != spec.Identity() || a.Seed != spec.Seed || a.SpecName != spec.Name {
		t.Fatalf("schedule identity not stamped: %s/%s/%d", a.SpecName, a.SpecID, a.Seed)
	}

	// Different seed must actually change the stochastic draws.
	reseeded := *spec
	reseeded.Seed = spec.Seed + 1
	c, err := Compile(&reseeded)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Canonical(), c.Canonical()) {
		t.Fatal("different seeds produced an identical schedule")
	}

	// Cohort-stream independence: compiling only the first cohort yields
	// the same per-item arrivals and requests that cohort had in the mix.
	solo := *spec
	solo.Cohorts = spec.Cohorts[:1]
	d, err := Compile(&solo)
	if err != nil {
		t.Fatal(err)
	}
	var mixed []Item
	for _, it := range a.Items {
		if it.Cohort == spec.Cohorts[0].Name {
			mixed = append(mixed, it)
		}
	}
	if len(mixed) != len(d.Items) {
		t.Fatalf("cohort item counts differ: %d vs %d", len(mixed), len(d.Items))
	}
	for i := range d.Items {
		if mixed[i].At != d.Items[i].At || !reflect.DeepEqual(mixed[i].Req, d.Items[i].Req) {
			t.Fatalf("item %d perturbed by sibling cohorts:\n mixed %+v\n solo  %+v", i, mixed[i], d.Items[i])
		}
	}
}

func TestArrivalShapes(t *testing.T) {
	base := Cohort{Name: "c", SLOClass: "s", Size: Size{Workload: "bfs"}}

	mk := func(n int, a Arrival) *Schedule {
		c := base
		c.Requests, c.Arrival = n, a
		sched, err := Compile(&Spec{Version: 1, Name: "shape", Seed: 5, Cohorts: []Cohort{c}})
		if err != nil {
			t.Fatal(err)
		}
		return sched
	}

	asap := mk(4, Arrival{Process: ProcessASAP})
	for _, it := range asap.Items {
		if it.At != 0 {
			t.Fatalf("asap arrival at %v, want 0", it.At)
		}
	}

	constant := mk(4, Arrival{Process: ProcessConstant, RatePerSec: 10})
	for i, it := range constant.Items {
		if want := time.Duration(i) * 100 * time.Millisecond; it.At != want {
			t.Fatalf("constant item %d at %v, want %v", i, it.At, want)
		}
	}

	burst := mk(6, Arrival{Process: ProcessBurst, BurstSize: 3, IntervalSec: 1})
	for i, it := range burst.Items {
		if want := time.Duration(i/3) * time.Second; it.At != want {
			t.Fatalf("burst item %d at %v, want %v", i, it.At, want)
		}
	}

	for _, proc := range []Arrival{
		{Process: ProcessPoisson, RatePerSec: 100},
		{Process: ProcessDiurnal, PeriodSec: 0.5, RatesPerSec: []float64{10, 200}},
	} {
		sched := mk(20, proc)
		last := time.Duration(-1)
		for i, it := range sched.Items {
			if it.At < last {
				t.Fatalf("%s item %d went backwards: %v after %v", proc.Process, i, it.At, last)
			}
			if it.Seq != i {
				t.Fatalf("%s item %d has seq %d", proc.Process, i, it.Seq)
			}
			last = it.At
		}
		if last <= 0 {
			t.Fatalf("%s schedule never advanced past t=0", proc.Process)
		}
	}
}

// TestFingerprintIgnoresAttribution pins the identity contract the
// memo, trace, and compare layers rely on: Client, SLOClass, and
// Priority never change a request's fingerprint, result-determining
// fields do.
func TestFingerprintIgnoresAttribution(t *testing.T) {
	seed := uint64(3)
	a := service.SubmitRequest{Workload: "bfs", Policy: "static", Scale: 8, SMs: 2, Seed: &seed}
	b := a
	b.Client, b.SLOClass, b.Priority = "other", "critical", 7
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("attribution fields changed the fingerprint")
	}
	c := a
	seed2 := uint64(4)
	c.Seed = &seed2
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("input seed did not change the fingerprint")
	}
}

// TestTraceRoundTrip: a schedule recorded through TraceWriter and
// replayed via ReadTrace+FromTrace preserves the per-fingerprint job
// multiset and the SLO-class attribution.
func TestTraceRoundTrip(t *testing.T) {
	spec, err := ParseFile("../../examples/workloads/load-smoke.yaml")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewTraceWriter(&buf)
	for _, it := range sched.Items {
		w.Record(it.Req)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(sched.Items) {
		t.Fatalf("recorded %d of %d", w.Count(), len(sched.Items))
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := FromTrace("replayed", recs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replay.Fingerprints(), sched.Fingerprints()) {
		t.Fatalf("fingerprint multiset changed in round trip:\n orig   %v\n replay %v",
			sched.Fingerprints(), replay.Fingerprints())
	}
	for i, it := range replay.Items {
		if it.SLOClass != sched.Items[i].SLOClass || it.Cohort != sched.Items[i].Cohort {
			t.Fatalf("item %d lost attribution: %s/%s vs %s/%s",
				i, it.Cohort, it.SLOClass, sched.Items[i].Cohort, sched.Items[i].SLOClass)
		}
	}
}

func TestReadTraceTornAndCorrupt(t *testing.T) {
	valid := `{"at_ms":0,"req":{"workload":"bfs"}}` + "\n"
	// A torn final line (crash mid-append) is tolerated and skipped.
	recs, err := ReadTrace(strings.NewReader(valid + valid + `{"at_ms": 7, "req":`))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	// The same garbage mid-file is corruption, named by line.
	_, err = ReadTrace(strings.NewReader(valid + "{garbage}\n" + valid))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("mid-file corruption not reported: %v", err)
	}
	// Offsets must not go backwards after normalization.
	back := `{"at_ms":100,"req":{"workload":"bfs"}}` + "\n" + `{"at_ms":50,"req":{"workload":"bfs"}}` + "\n"
	recs, err = ReadTrace(strings.NewReader(back))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTrace("", recs); err == nil {
		t.Fatal("backwards arrival offsets accepted")
	}
	if _, err := FromTrace("", nil); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// TestExampleSpecsParse pins the committed example specs: they must
// parse, and bursty-mix must keep the shape the docs promise (Poisson
// and diurnal cohorts, at least two SLO classes, skewed popularity).
func TestExampleSpecsParse(t *testing.T) {
	for _, name := range []string{"legacy-quick", "bursty-mix", "load-smoke"} {
		if _, err := ParseFile("../../examples/workloads/" + name + ".yaml"); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	mix, err := ParseFile("../../examples/workloads/bursty-mix.yaml")
	if err != nil {
		t.Fatal(err)
	}
	procs := map[string]bool{}
	classes := map[string]bool{}
	skewed := false
	for _, c := range mix.Cohorts {
		procs[c.Arrival.Process] = true
		classes[c.SLOClass] = true
		if len(c.Size.Workloads) > 1 {
			skewed = true
		}
	}
	if !procs[ProcessPoisson] || !procs[ProcessDiurnal] {
		t.Fatalf("bursty-mix lost its poisson+diurnal cohorts: %v", procs)
	}
	if len(classes) < 2 {
		t.Fatalf("bursty-mix needs >= 2 SLO classes, has %v", classes)
	}
	if !skewed {
		t.Fatal("bursty-mix lost its weighted workload draw")
	}
}

// TestLegacyFileMatchesBuiltin pins examples/workloads/legacy-quick.yaml
// to workspec.Legacy — the builtin the -jobs shim synthesizes — so the
// committed file and the code path cannot drift apart.
func TestLegacyFileMatchesBuiltin(t *testing.T) {
	fromFile, err := ParseFile("../../examples/workloads/legacy-quick.yaml")
	if err != nil {
		t.Fatal(err)
	}
	builtin := Legacy(24, 8, 2, true)
	if !reflect.DeepEqual(fromFile, builtin) {
		t.Fatalf("example file and builtin legacy spec drifted:\n file    %+v\n builtin %+v", fromFile, builtin)
	}
	if fromFile.Identity() != builtin.Identity() {
		t.Fatalf("identities differ: %s vs %s", fromFile.Identity(), builtin.Identity())
	}
	if full := Legacy(64, 4, 4, false); full.Name != "legacy" || full.TotalRequests() != 64 {
		t.Fatalf("full-mode legacy spec wrong: %+v", full)
	}
}
