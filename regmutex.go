// Package regmutex is a full reproduction of "RegMutex: Inter-Warp GPU
// Register Time-Sharing" (Khorasani et al., ISCA 2018) — the compiler
// passes, the microarchitecture, the baselines it is compared against,
// and the simulator and workloads needed to regenerate the paper's
// evaluation — implemented from scratch in pure Go.
//
// The package is a facade over the implementation packages:
//
//   - Kernels are authored with NewBuilder or parsed from assembly text
//     with ParseAsm (see internal/asm for the format).
//   - Transform runs the RegMutex compiler pass of section III-A:
//     liveness analysis, extended-set sizing, register index compaction,
//     and acquire/release injection.
//   - New + Run simulate a kernel on a Fermi-class GPU model under one
//     of the register allocation policies: NewStaticPolicy (the
//     baseline), NewRegMutexPolicy, NewPairedPolicy (section III-C),
//     NewOWFPolicy and NewRFVPolicy (the related work of section IV-C).
//     A DeviceSpec names the machine, timing model, and kernel; options
//     (WithPolicy, WithGlobal, WithObserver, WithAudit) attach the rest.
//   - The observability layer (Observer, NewTrace + NewCollector,
//     WriteChromeTrace, NewMetrics) records per-cycle stall attribution,
//     structural events, and counters from a run; StallBreakdown in
//     Stats carries the per-cause scheduler-slot accounting.
//   - Workloads returns the sixteen Table I applications; the harness
//     functions (Fig7, Fig8, ...) regenerate each of the paper's tables
//     and figures.
//
// Quick start:
//
//	k, _ := regmutex.ParseAsm(src)
//	cfg := regmutex.GTX480()
//	res, _ := regmutex.Transform(k, regmutex.Options{Config: cfg})
//	dev, _ := regmutex.New(
//	    regmutex.DeviceSpec{Config: cfg, Timing: regmutex.DefaultTiming(), Kernel: res.Kernel},
//	    regmutex.WithPolicy(regmutex.NewRegMutexPolicy(cfg)))
//	stats, _ := dev.Run()
//	fmt.Println(stats.Cycles, stats.Stall)
//
// To capture a cycle-level trace of the run, attach a collector before
// New and export it afterwards:
//
//	trace := regmutex.NewTrace(0)
//	col := regmutex.NewCollector(trace)
//	dev, _ := regmutex.New(spec, regmutex.WithPolicy(pol), regmutex.WithObserver(col))
//	stats, _ := dev.Run()
//	col.Flush(stats.Cycles)
//	regmutex.WriteChromeTrace(f, trace.Events()) // open f in ui.perfetto.dev
package regmutex

import (
	"io"

	"regmutex/internal/asm"
	"regmutex/internal/core"
	"regmutex/internal/energy"
	"regmutex/internal/harness"
	"regmutex/internal/isa"
	"regmutex/internal/obs"
	"regmutex/internal/occupancy"
	"regmutex/internal/sim"
	"regmutex/internal/workloads"
)

// Kernel program model (see internal/isa).
type (
	// Kernel is a GPU kernel: code plus launch resources.
	Kernel = isa.Kernel
	// Builder assembles kernels programmatically.
	Builder = isa.Builder
	// Instr is one machine instruction.
	Instr = isa.Instr
	// Reg is an architected register index.
	Reg = isa.Reg
	// RegSet is a bitset of architected registers.
	RegSet = isa.RegSet
	// Operand is an instruction source operand.
	Operand = isa.Operand
)

// NewBuilder starts a kernel with the given name and resource shape
// (architected registers, predicate registers, threads per CTA).
func NewBuilder(name string, numRegs, numPRegs, threadsPerCTA int) *Builder {
	return isa.NewBuilder(name, numRegs, numPRegs, threadsPerCTA)
}

// R makes a register operand for the Builder.
func R(r Reg) Operand { return isa.R(r) }

// Imm makes an integer immediate operand.
func Imm(v int64) Operand { return isa.Imm(v) }

// FImm makes a floating-point immediate operand.
func FImm(v float64) Operand { return isa.FImm(v) }

// Comparison operators for Builder.Setp / Builder.SetpF.
const (
	CmpEQ = isa.CmpEQ
	CmpNE = isa.CmpNE
	CmpLT = isa.CmpLT
	CmpLE = isa.CmpLE
	CmpGT = isa.CmpGT
	CmpGE = isa.CmpGE
)

// Special hardware registers for Builder.MovSpecial.
const (
	SpecTID    = isa.SpecTID
	SpecNTID   = isa.SpecNTID
	SpecCTAID  = isa.SpecCTAID
	SpecNCTAID = isa.SpecNCTAID
	SpecLaneID = isa.SpecLaneID
	SpecWarpID = isa.SpecWarpID
)

// ParseAsm assembles kernel text (see internal/asm for the format).
func ParseAsm(src string) (*Kernel, error) { return asm.Parse(src) }

// FormatAsm renders a kernel as assembly text; ParseAsm round-trips it.
func FormatAsm(k *Kernel) string { return asm.Format(k) }

// Machine configuration (see internal/occupancy).
type (
	// Config describes the simulated GPU.
	Config = occupancy.Config
	// OccupancyResult is a theoretical occupancy computation.
	OccupancyResult = occupancy.Result
)

// GTX480 is the paper's baseline machine: 15 SMs, 128 KB register file
// per SM, 48 warp slots, 2 greedy-then-oldest schedulers.
func GTX480() Config { return occupancy.GTX480() }

// GTX480Half is the register-file-size-reduction machine of section IV-B.
func GTX480Half() Config { return occupancy.GTX480Half() }

// K20 is a Kepler-class machine used by the generality study: twice the
// registers, but also twice the warp slots, so kernels above 32 registers
// per thread stay occupancy-limited (paper section IV's argument).
func K20() Config { return occupancy.K20() }

// Occupancy computes the kernel's theoretical occupancy under static
// allocation on the given machine.
func Occupancy(c Config, k *Kernel) OccupancyResult { return occupancy.Baseline(c, k) }

// The RegMutex compiler (see internal/core).
type (
	// Options configures Transform.
	Options = core.Options
	// Result is the outcome of the RegMutex pass.
	Result = core.Result
	// Split is a chosen |Bs| / |Es| division.
	Split = core.Split
)

// Transform runs the RegMutex compiler pipeline of paper section III-A on
// k: liveness analysis, extended-set size selection, register index
// compaction, and acquire/release injection. k is not modified.
func Transform(k *Kernel, opt Options) (*Result, error) { return core.Transform(k, opt) }

// Prepare annotates a kernel for simulation without the RegMutex pass
// (reconvergence points and dead-value metadata); use it for baseline,
// OWF, and RFV runs.
func Prepare(k *Kernel) (*Kernel, error) { return core.Prepare(k) }

// The simulator (see internal/sim).
type (
	// Device is a simulated GPU.
	Device = sim.Device
	// DeviceSpec names the machine, timing model, and kernel of a run;
	// pass it to New with options for everything else.
	DeviceSpec = sim.DeviceSpec
	// DeviceOption configures New (WithPolicy, WithGlobal, WithObserver,
	// WithAudit, WithSampleInterval).
	DeviceOption = sim.Option
	// Stats summarises a finished run.
	Stats = sim.Stats
	// Timing is the latency/structural model.
	Timing = sim.Timing
	// Policy decides how physical registers are allocated.
	Policy = sim.Policy
	// DeviceEvent is a coarse structural notification (CTA launches and
	// retirements, extended-set acquires and releases) delivered to an
	// attached Observer.
	DeviceEvent = sim.Event
	// Sample is a periodic utilisation snapshot delivered to an attached
	// Observer.
	Sample = sim.Sample
)

// The instrumentation surface (see internal/sim and internal/obs).
type (
	// Observer receives a run's instrumentation stream: structural
	// events, utilisation samples, and per-cycle scheduler-slot stall
	// attribution. Attach one with WithObserver.
	Observer = sim.Observer
	// ObserverFuncs adapts plain functions to Observer.
	ObserverFuncs = sim.ObserverFuncs
	// StallCause identifies what a scheduler slot spent a cycle on.
	StallCause = sim.StallCause
	// StallBreakdown counts scheduler-slot cycles per cause; it sums to
	// cycles × schedulers exactly.
	StallBreakdown = sim.StallBreakdown
	// StallSlot is one scheduler slot's attribution for one cycle.
	StallSlot = sim.StallSlot
	// Trace is a bounded ring buffer of structured trace events.
	Trace = obs.Trace
	// TraceEvent is one record in a Trace.
	TraceEvent = obs.TraceEvent
	// Collector assembles a run's instrumentation into a Trace; attach
	// with WithObserver and call Flush after Run.
	Collector = obs.Collector
	// Metrics is a registry of named counters and gauges.
	Metrics = obs.Registry
	// MetricsReport is a snapshot of a Metrics registry, exportable as
	// JSON or CSV.
	MetricsReport = obs.MetricsReport
)

// Scheduler-slot stall causes (see StallCause).
const (
	CauseIssued     = sim.CauseIssued
	CauseScoreboard = sim.CauseScoreboard
	CauseMemory     = sim.CauseMemory
	CauseAcquire    = sim.CauseAcquire
	CauseBarrier    = sim.CauseBarrier
	CauseNoWarp     = sim.CauseNoWarp
	CauseEmpty      = sim.CauseEmpty
)

// DefaultTiming returns the timing model used in the evaluation.
func DefaultTiming() Timing { return sim.DefaultTiming() }

// New builds a device from the spec and options; this is the canonical
// constructor. With no WithPolicy option the static baseline is used;
// with no WithGlobal option a zero-filled heap sized by the kernel is
// allocated.
func New(spec DeviceSpec, opts ...DeviceOption) (*Device, error) { return sim.New(spec, opts...) }

// WithPolicy selects the register-allocation policy for New.
func WithPolicy(p Policy) DeviceOption { return sim.WithPolicy(p) }

// WithGlobal provides the device's global memory contents (the workload
// input).
func WithGlobal(g []uint64) DeviceOption { return sim.WithGlobal(g) }

// WithObserver attaches an instrumentation observer; repeat the option
// to attach several.
func WithObserver(o Observer) DeviceOption { return sim.WithObserver(o) }

// WithSampleInterval sets how often (in cycles) utilisation samples are
// delivered to Observer.OnCycleSample.
func WithSampleInterval(n int64) DeviceOption { return sim.WithSampleInterval(n) }

// NewTrace creates a ring buffer holding up to capacity trace events
// (capacity <= 0 selects the default of 262144).
func NewTrace(capacity int) *Trace { return obs.NewTrace(capacity) }

// NewCollector builds a trace collector feeding the given trace.
func NewCollector(t *Trace) *Collector { return obs.NewCollector(t) }

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WriteChromeTrace exports trace events as Chrome trace-event JSON,
// loadable in ui.perfetto.dev and chrome://tracing.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// RenderTimeline draws a Figure 2-style text timeline of a trace.
func RenderTimeline(w io.Writer, events []TraceEvent, width int) {
	obs.RenderTimeline(w, events, width)
}

// NewDevice builds a device for the kernel under the given policy; pass a
// nil policy for the static baseline and nil global memory for a
// zero-filled heap sized by the kernel.
//
// Deprecated: use New with a DeviceSpec and options.
func NewDevice(cfg Config, t Timing, k *Kernel, pol Policy, global []uint64) (*Device, error) {
	return sim.NewDevice(cfg, t, k, pol, global)
}

// NewMultiDevice co-schedules CTAs of several dissimilar kernels on the
// same SMs. Per paper section IV, RegMutex does not support this mode:
// kernels must carry no extended set (use Prepare, not Transform), and
// execution falls back to static, exclusive allocation. Each kernel gets
// its own global memory; read results back with Device.GlobalOf.
func NewMultiDevice(cfg Config, t Timing, kernels []*Kernel, globals [][]uint64) (*Device, error) {
	return sim.NewMultiDevice(cfg, t, kernels, globals)
}

// NewStaticPolicy is the baseline static, exclusive register allocation.
func NewStaticPolicy(cfg Config) Policy { return sim.NewStaticPolicy(cfg) }

// NewRegMutexPolicy time-shares extended register sets out of the Shared
// Register Pool (sections III-B1 and III-B2). The kernel must have been
// compiled with Transform.
func NewRegMutexPolicy(cfg Config) Policy { return sim.NewRegMutexPolicy(cfg) }

// NewPairedPolicy is the paired-warps specialisation (section III-C).
func NewPairedPolicy(cfg Config) Policy { return sim.NewPairedPolicy(cfg) }

// NewOWFPolicy models the resource sharing scheme of Jatala et al. with
// Owner Warp First scheduling; threshold is the shared-register boundary.
func NewOWFPolicy(cfg Config, threshold int) Policy { return sim.NewOWFPolicy(cfg, threshold) }

// NewRFVPolicy models register file virtualization (Jeon et al.).
func NewRFVPolicy(cfg Config) Policy { return sim.NewRFVPolicy(cfg) }

// Workloads (see internal/workloads).
type Workload = workloads.Workload

// Workloads returns the sixteen Table I applications.
func Workloads() []*Workload { return workloads.All() }

// WorkloadByName finds one Table I application.
func WorkloadByName(name string) (*Workload, error) { return workloads.ByName(name) }

// Register file energy model (see internal/energy).
type (
	// EnergyModel prices register file accesses and leakage.
	EnergyModel = energy.Model
	// EnergyReport is a per-run register file energy breakdown.
	EnergyReport = energy.Report
)

// DefaultEnergyModel returns representative 40 nm-class parameters.
func DefaultEnergyModel() EnergyModel { return energy.DefaultModel() }

// Experiment harness (see internal/harness): regenerates the paper's
// tables and figures.
type ExperimentOptions = harness.Options
