// Package regmutex is a full reproduction of "RegMutex: Inter-Warp GPU
// Register Time-Sharing" (Khorasani et al., ISCA 2018) — the compiler
// passes, the microarchitecture, the baselines it is compared against,
// and the simulator and workloads needed to regenerate the paper's
// evaluation — implemented from scratch in pure Go.
//
// The package is a facade over the implementation packages:
//
//   - Kernels are authored with NewBuilder or parsed from assembly text
//     with ParseAsm (see internal/asm for the format).
//   - Transform runs the RegMutex compiler pass of section III-A:
//     liveness analysis, extended-set sizing, register index compaction,
//     and acquire/release injection.
//   - NewDevice + Run simulate a kernel on a Fermi-class GPU model under
//     one of the register allocation policies: NewStaticPolicy (the
//     baseline), NewRegMutexPolicy, NewPairedPolicy (section III-C),
//     NewOWFPolicy and NewRFVPolicy (the related work of section IV-C).
//   - Workloads returns the sixteen Table I applications; the harness
//     functions (Fig7, Fig8, ...) regenerate each of the paper's tables
//     and figures.
//
// Quick start:
//
//	k, _ := regmutex.ParseAsm(src)
//	res, _ := regmutex.Transform(k, regmutex.Options{Config: regmutex.GTX480()})
//	dev, _ := regmutex.NewDevice(regmutex.GTX480(), regmutex.DefaultTiming(),
//	    res.Kernel, regmutex.NewRegMutexPolicy(regmutex.GTX480()), nil)
//	stats, _ := dev.Run()
package regmutex

import (
	"regmutex/internal/asm"
	"regmutex/internal/core"
	"regmutex/internal/energy"
	"regmutex/internal/harness"
	"regmutex/internal/isa"
	"regmutex/internal/occupancy"
	"regmutex/internal/sim"
	"regmutex/internal/workloads"
)

// Kernel program model (see internal/isa).
type (
	// Kernel is a GPU kernel: code plus launch resources.
	Kernel = isa.Kernel
	// Builder assembles kernels programmatically.
	Builder = isa.Builder
	// Instr is one machine instruction.
	Instr = isa.Instr
	// Reg is an architected register index.
	Reg = isa.Reg
	// RegSet is a bitset of architected registers.
	RegSet = isa.RegSet
	// Operand is an instruction source operand.
	Operand = isa.Operand
)

// NewBuilder starts a kernel with the given name and resource shape
// (architected registers, predicate registers, threads per CTA).
func NewBuilder(name string, numRegs, numPRegs, threadsPerCTA int) *Builder {
	return isa.NewBuilder(name, numRegs, numPRegs, threadsPerCTA)
}

// R makes a register operand for the Builder.
func R(r Reg) Operand { return isa.R(r) }

// Imm makes an integer immediate operand.
func Imm(v int64) Operand { return isa.Imm(v) }

// FImm makes a floating-point immediate operand.
func FImm(v float64) Operand { return isa.FImm(v) }

// Comparison operators for Builder.Setp / Builder.SetpF.
const (
	CmpEQ = isa.CmpEQ
	CmpNE = isa.CmpNE
	CmpLT = isa.CmpLT
	CmpLE = isa.CmpLE
	CmpGT = isa.CmpGT
	CmpGE = isa.CmpGE
)

// Special hardware registers for Builder.MovSpecial.
const (
	SpecTID    = isa.SpecTID
	SpecNTID   = isa.SpecNTID
	SpecCTAID  = isa.SpecCTAID
	SpecNCTAID = isa.SpecNCTAID
	SpecLaneID = isa.SpecLaneID
	SpecWarpID = isa.SpecWarpID
)

// ParseAsm assembles kernel text (see internal/asm for the format).
func ParseAsm(src string) (*Kernel, error) { return asm.Parse(src) }

// FormatAsm renders a kernel as assembly text; ParseAsm round-trips it.
func FormatAsm(k *Kernel) string { return asm.Format(k) }

// Machine configuration (see internal/occupancy).
type (
	// Config describes the simulated GPU.
	Config = occupancy.Config
	// OccupancyResult is a theoretical occupancy computation.
	OccupancyResult = occupancy.Result
)

// GTX480 is the paper's baseline machine: 15 SMs, 128 KB register file
// per SM, 48 warp slots, 2 greedy-then-oldest schedulers.
func GTX480() Config { return occupancy.GTX480() }

// GTX480Half is the register-file-size-reduction machine of section IV-B.
func GTX480Half() Config { return occupancy.GTX480Half() }

// K20 is a Kepler-class machine used by the generality study: twice the
// registers, but also twice the warp slots, so kernels above 32 registers
// per thread stay occupancy-limited (paper section IV's argument).
func K20() Config { return occupancy.K20() }

// Occupancy computes the kernel's theoretical occupancy under static
// allocation on the given machine.
func Occupancy(c Config, k *Kernel) OccupancyResult { return occupancy.Baseline(c, k) }

// The RegMutex compiler (see internal/core).
type (
	// Options configures Transform.
	Options = core.Options
	// Result is the outcome of the RegMutex pass.
	Result = core.Result
	// Split is a chosen |Bs| / |Es| division.
	Split = core.Split
)

// Transform runs the RegMutex compiler pipeline of paper section III-A on
// k: liveness analysis, extended-set size selection, register index
// compaction, and acquire/release injection. k is not modified.
func Transform(k *Kernel, opt Options) (*Result, error) { return core.Transform(k, opt) }

// Prepare annotates a kernel for simulation without the RegMutex pass
// (reconvergence points and dead-value metadata); use it for baseline,
// OWF, and RFV runs.
func Prepare(k *Kernel) (*Kernel, error) { return core.Prepare(k) }

// The simulator (see internal/sim).
type (
	// Device is a simulated GPU.
	Device = sim.Device
	// Stats summarises a finished run.
	Stats = sim.Stats
	// Timing is the latency/structural model.
	Timing = sim.Timing
	// Policy decides how physical registers are allocated.
	Policy = sim.Policy
	// DeviceEvent is a coarse notification delivered to Device.Listener
	// (CTA launches and retirements, extended-set acquires and releases).
	DeviceEvent = sim.Event
)

// DefaultTiming returns the timing model used in the evaluation.
func DefaultTiming() Timing { return sim.DefaultTiming() }

// NewDevice builds a device for the kernel under the given policy; pass a
// nil policy for the static baseline and nil global memory for a
// zero-filled heap sized by the kernel.
func NewDevice(cfg Config, t Timing, k *Kernel, pol Policy, global []uint64) (*Device, error) {
	return sim.NewDevice(cfg, t, k, pol, global)
}

// NewMultiDevice co-schedules CTAs of several dissimilar kernels on the
// same SMs. Per paper section IV, RegMutex does not support this mode:
// kernels must carry no extended set (use Prepare, not Transform), and
// execution falls back to static, exclusive allocation. Each kernel gets
// its own global memory; read results back with Device.GlobalOf.
func NewMultiDevice(cfg Config, t Timing, kernels []*Kernel, globals [][]uint64) (*Device, error) {
	return sim.NewMultiDevice(cfg, t, kernels, globals)
}

// NewStaticPolicy is the baseline static, exclusive register allocation.
func NewStaticPolicy(cfg Config) Policy { return sim.NewStaticPolicy(cfg) }

// NewRegMutexPolicy time-shares extended register sets out of the Shared
// Register Pool (sections III-B1 and III-B2). The kernel must have been
// compiled with Transform.
func NewRegMutexPolicy(cfg Config) Policy { return sim.NewRegMutexPolicy(cfg) }

// NewPairedPolicy is the paired-warps specialisation (section III-C).
func NewPairedPolicy(cfg Config) Policy { return sim.NewPairedPolicy(cfg) }

// NewOWFPolicy models the resource sharing scheme of Jatala et al. with
// Owner Warp First scheduling; threshold is the shared-register boundary.
func NewOWFPolicy(cfg Config, threshold int) Policy { return sim.NewOWFPolicy(cfg, threshold) }

// NewRFVPolicy models register file virtualization (Jeon et al.).
func NewRFVPolicy(cfg Config) Policy { return sim.NewRFVPolicy(cfg) }

// Workloads (see internal/workloads).
type Workload = workloads.Workload

// Workloads returns the sixteen Table I applications.
func Workloads() []*Workload { return workloads.All() }

// WorkloadByName finds one Table I application.
func WorkloadByName(name string) (*Workload, error) { return workloads.ByName(name) }

// Register file energy model (see internal/energy).
type (
	// EnergyModel prices register file accesses and leakage.
	EnergyModel = energy.Model
	// EnergyReport is a per-run register file energy breakdown.
	EnergyReport = energy.Report
)

// DefaultEnergyModel returns representative 40 nm-class parameters.
func DefaultEnergyModel() EnergyModel { return energy.DefaultModel() }

// Experiment harness (see internal/harness): regenerates the paper's
// tables and figures.
type ExperimentOptions = harness.Options
