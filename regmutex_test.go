package regmutex_test

import (
	"strings"
	"testing"

	"regmutex"
)

// The facade is what downstream users see; exercise the documented flow
// end to end: parse assembly, transform, simulate, inspect.
func TestFacadeEndToEnd(t *testing.T) {
	src := `
.kernel facade
.regs 24
.pregs 1
.threads 256
.grid 8
.global 65536

    mov.special r0, %tid
    mov.special r1, %ctaid
    imad r2, r1, 256, r0
    and r2, r2, 16383
    mov r3, 0
    mov r4, 6
top:
    ld.global r5, [r2+0]
    iadd r16, r5, 1
    iadd r17, r5, 2
    iadd r18, r5, 3
    iadd r19, r5, 4
    iadd r20, r5, 5
    iadd r21, r5, 6
    iadd r22, r5, 7
    iadd r23, r5, 8
    iadd r3, r3, r16
    iadd r3, r3, r17
    iadd r3, r3, r18
    iadd r3, r3, r19
    iadd r3, r3, r20
    iadd r3, r3, r21
    iadd r3, r3, r22
    iadd r3, r3, r23
    iadd r2, r2, 256
    and r2, r2, 16383
    isub r4, r4, 1
    setp.gt p0, r4, 0
    @p0 bra top
    imad r5, r1, 256, r0
    st.global [r5+32768], r3
    exit
`
	k, err := regmutex.ParseAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	machine := regmutex.GTX480()
	machine.NumSMs = 2

	// Round trip through the formatter.
	if _, err := regmutex.ParseAsm(regmutex.FormatAsm(k)); err != nil {
		t.Fatalf("format round trip: %v", err)
	}

	occ := regmutex.Occupancy(machine, k)
	if occ.WarpsPerSM <= 0 {
		t.Fatalf("occupancy: %+v", occ)
	}

	res, err := regmutex.Transform(k, regmutex.Options{Config: machine})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := regmutex.Prepare(k)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		kernel *regmutex.Kernel
		pol    regmutex.Policy
	}{
		{"static", pre, regmutex.NewStaticPolicy(machine)},
		{"regmutex", res.Kernel, regmutex.NewRegMutexPolicy(machine)},
		{"paired", res.Kernel, regmutex.NewPairedPolicy(machine)},
		{"owf", pre, regmutex.NewOWFPolicy(machine, res.Split.Bs)},
		{"rfv", pre, regmutex.NewRFVPolicy(machine)},
	} {
		dev, err := regmutex.NewDevice(machine, regmutex.DefaultTiming(), tc.kernel, tc.pol, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		st, err := dev.Run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if st.Cycles <= 0 || st.CTAs != k.GridCTAs {
			t.Errorf("%s: stats %+v", tc.name, st)
		}
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := regmutex.NewBuilder("built", 8, 1, 64)
	b.MovSpecial(0, regmutex.SpecTID)
	b.Mov(1, regmutex.Imm(3))
	b.IAdd(2, regmutex.R(0), regmutex.R(1))
	b.Setp(0, regmutex.CmpLT, regmutex.R(2), regmutex.Imm(100))
	b.StGlobal(regmutex.R(0), 0, regmutex.R(2))
	b.Exit()
	k, err := b.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(regmutex.FormatAsm(k), "setp.lt p0, r2, 100") {
		t.Errorf("unexpected assembly:\n%s", regmutex.FormatAsm(k))
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if got := len(regmutex.Workloads()); got != 16 {
		t.Fatalf("workloads = %d, want 16", got)
	}
	w, err := regmutex.WorkloadByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	if w.PaperBs != 18 {
		t.Errorf("bfs paper Bs = %d", w.PaperBs)
	}
}
